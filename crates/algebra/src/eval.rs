//! The execution engine (§1.2.3): evaluates [`LogicalPlan`]s over a
//! [`Catalog`] of stored nested relations, optionally backed by the source
//! [`Document`] for navigation and ancestor-ID derivation.
//!
//! Physical choices: structural joins run the `StackTree` merge when inputs
//! are (or are made) ID-sorted, with a nested-loop fallback selectable via
//! [`EvalConfig`] for the ablation benches; value equi-joins use an
//! in-memory hash table; `GroupBy` uses a hash table preserving first-seen
//! group order; `Sort_φ` is a stable comparison sort.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::time::Instant;

use obs::{ExecMetrics, Meter, OpProfile};
use xmltree::{Document, NodeId, NodeKind, StructuralId};

use crate::order::{tuple_cmp_all, value_cmp, OrderSpec};
use crate::plan::{
    Axis, CmpOp, FetchWhat, JoinKind, LogicalPlan, NavMode, Operand, Path, Predicate, TwigStep,
};
use crate::simd::IdColumns;
use crate::skip::{SkipIndex, DEFAULT_BLOCK};
use crate::stacktree::{
    nested_loop_pairs, stack_tree_pairs_columnar, stack_tree_pairs_columnar_metered,
    stack_tree_pairs_indexed, stack_tree_pairs_indexed_metered,
};
use crate::twig::{
    twig_join_columnar, twig_join_columnar_metered, twig_join_indexed, twig_join_indexed_metered,
    twig_to_cascade, TwigPattern,
};
use crate::value::{Collection, Field, FieldKind, Schema, Tuple, Value};

/// A materialized nested relation: schema + tuples (list semantics).
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    pub schema: Schema,
    pub tuples: Vec<Tuple>,
}

impl Relation {
    pub fn new(schema: Schema, tuples: Vec<Tuple>) -> Relation {
        Relation { schema, tuples }
    }

    pub fn empty(schema: Schema) -> Relation {
        Relation {
            schema,
            tuples: Vec::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

/// Named store of base relations (storage modules, indexes, materialized
/// views) visible to plans.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    relations: HashMap<String, Relation>,
    orders: HashMap<String, OrderSpec>,
}

impl Catalog {
    pub fn new() -> Catalog {
        Catalog::default()
    }

    pub fn insert(&mut self, name: impl Into<String>, rel: Relation) {
        self.relations.insert(name.into(), rel);
    }

    /// Register a relation together with its declared output order.
    pub fn insert_ordered(&mut self, name: impl Into<String>, rel: Relation, order: OrderSpec) {
        let name = name.into();
        self.orders.insert(name.clone(), order);
        self.relations.insert(name, rel);
    }

    pub fn get(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// The [`OrderSpec`] a relation was registered with via
    /// [`Catalog::insert_ordered`], if any. Lets the pipelined executor
    /// elide a `Sort` boundary over a base scan whose declared order
    /// already satisfies the requested key.
    pub fn declared_order(&self, name: &str) -> Option<&OrderSpec> {
        self.orders.get(name)
    }

    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(|s| s.as_str())
    }

    pub fn len(&self) -> usize {
        self.relations.len()
    }

    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }
}

/// Physical-layer knobs.
#[derive(Debug, Clone, Copy)]
pub struct EvalConfig {
    /// Use the StackTree merge for structural joins (`false` = nested loop,
    /// for the ablation bench).
    pub use_stacktree: bool,
    /// Evaluate [`LogicalPlan::TwigJoin`] with the holistic multi-way
    /// merge (`false` = desugar to the binary cascade, for the ablation
    /// bench and as the correctness oracle).
    pub use_twigstack: bool,
    /// Build [`SkipIndex`]es over join input streams so the StackTree
    /// merge and the twig kernel seek over prunable regions instead of
    /// scanning them (`false` = linear advance, for the ablation bench).
    pub use_skip_index: bool,
    /// Pack join input streams into [`IdColumns`] and run the
    /// vectorized kernels (`twig_join_columnar`,
    /// `stack_tree_pairs_columnar`): batched containment windows and
    /// galloping seeks over the sorted pre column. Off = the scalar
    /// element-at-a-time kernels (ablation baseline). Columnar streams
    /// are seekable by construction, so this subsumes skipping even
    /// when `use_skip_index` is off.
    pub columnar_kernels: bool,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            use_stacktree: true,
            use_twigstack: true,
            use_skip_index: true,
            columnar_kernels: true,
        }
    }
}

/// Evaluation errors: unknown relations/attributes, type misuse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    UnknownRelation(String),
    UnknownAttribute(String),
    TypeError(String),
    NeedsDocument(&'static str),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            EvalError::UnknownAttribute(a) => write!(f, "unknown attribute `{a}`"),
            EvalError::TypeError(m) => write!(f, "type error: {m}"),
            EvalError::NeedsDocument(op) => {
                write!(
                    f,
                    "operator {op} requires a source document in the evaluator"
                )
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// Plan interpreter.
pub struct Evaluator<'a> {
    pub catalog: &'a Catalog,
    pub doc: Option<&'a Document>,
    pub config: EvalConfig,
    /// When set, the physical join kernels run their metered variants and
    /// accumulate counters here. `None` (the default) keeps the hot path
    /// on the unmetered monomorphizations.
    pub metrics: Option<RefCell<ExecMetrics>>,
}

impl<'a> Evaluator<'a> {
    pub fn new(catalog: &'a Catalog) -> Evaluator<'a> {
        Evaluator {
            catalog,
            doc: None,
            config: EvalConfig::default(),
            metrics: None,
        }
    }

    pub fn with_document(catalog: &'a Catalog, doc: &'a Document) -> Evaluator<'a> {
        Evaluator {
            catalog,
            doc: Some(doc),
            config: EvalConfig::default(),
            metrics: None,
        }
    }

    /// Evaluate a logical plan to a materialized relation.
    pub fn eval(&self, plan: &LogicalPlan) -> Result<Relation, EvalError> {
        use LogicalPlan::*;
        match plan {
            Scan { relation } => self
                .catalog
                .get(relation)
                .cloned()
                .ok_or_else(|| EvalError::UnknownRelation(relation.clone())),
            Select { input, pred } => {
                let rel = self.eval(input)?;
                self.eval_select(rel, pred)
            }
            Project {
                input,
                cols,
                distinct,
            } => {
                let rel = self.eval(input)?;
                self.eval_project(rel, cols, *distinct)
            }
            Product { left, right } => {
                let l = self.eval(left)?;
                let r = self.eval(right)?;
                let schema = l.schema.concat(&r.schema);
                let mut tuples = Vec::with_capacity(l.len() * r.len());
                for lt in &l.tuples {
                    for rt in &r.tuples {
                        tuples.push(lt.concat(rt));
                    }
                }
                Ok(Relation::new(schema, tuples))
            }
            Join {
                left,
                right,
                pred,
                kind,
            } => {
                let l = self.eval(left)?;
                let r = self.eval(right)?;
                self.eval_value_join(l, r, pred, *kind)
            }
            StructJoin {
                left,
                right,
                left_attr,
                right_attr,
                axis,
                kind,
                nest_as,
            } => {
                let l = self.eval(left)?;
                let r = self.eval(right)?;
                self.eval_struct_join(
                    l,
                    r,
                    left_attr,
                    right_attr,
                    *axis,
                    *kind,
                    nest_as.as_deref(),
                )
            }
            TwigJoin { root, steps } => self.eval_twig_join(root, steps),
            Union { left, right } => {
                let mut l = self.eval(left)?;
                let r = self.eval(right)?;
                if l.schema.arity() != r.schema.arity() {
                    return Err(EvalError::TypeError(format!(
                        "union arity mismatch: {} vs {}",
                        l.schema.arity(),
                        r.schema.arity()
                    )));
                }
                l.tuples.extend(r.tuples);
                Ok(l)
            }
            Difference { left, right } => {
                let l = self.eval(left)?;
                let r = self.eval(right)?;
                let keep: Vec<Tuple> = l
                    .tuples
                    .into_iter()
                    .filter(|t| {
                        !r.tuples
                            .iter()
                            .any(|rt| tuple_cmp_all(t, rt) == std::cmp::Ordering::Equal)
                    })
                    .collect();
                Ok(Relation::new(l.schema, keep))
            }
            GroupBy {
                input,
                keys,
                nest_as,
            } => {
                let rel = self.eval(input)?;
                self.eval_group_by(rel, keys, nest_as)
            }
            Unnest { input, attr } => {
                let rel = self.eval(input)?;
                self.eval_unnest(rel, attr)
            }
            NestAll { input, as_name } => {
                let rel = self.eval(input)?;
                let inner = rel.schema.clone();
                let schema = Schema::new(vec![Field::nested(as_name.clone(), inner)]);
                let tuple = Tuple::new(vec![Value::Coll(Collection::list(rel.tuples))]);
                Ok(Relation::new(schema, vec![tuple]))
            }
            Sort { input, by } => {
                let mut rel = self.eval(input)?;
                let idxs: Vec<Vec<usize>> = by
                    .iter()
                    .map(|p| resolve(&rel.schema, p))
                    .collect::<Result<_, _>>()?;
                rel.tuples.sort_by(|a, b| {
                    for idx in &idxs {
                        let va = flat_value(a, idx);
                        let vb = flat_value(b, idx);
                        let c = value_cmp(&va, &vb);
                        if c != std::cmp::Ordering::Equal {
                            return c;
                        }
                    }
                    std::cmp::Ordering::Equal
                });
                Ok(rel)
            }
            XmlTemplate { input, templ } => {
                let rel = self.eval(input)?;
                let schema = Schema::atoms(&["xml"]);
                let tuples = rel
                    .tuples
                    .iter()
                    .map(|t| {
                        let mut out = String::new();
                        templ.render(&rel.schema, t, &mut out);
                        Tuple::new(vec![Value::str(out)])
                    })
                    .collect();
                Ok(Relation::new(schema, tuples))
            }
            Navigate {
                input,
                from_attr,
                axis,
                label,
                as_prefix,
                mode,
            } => {
                let rel = self.eval(input)?;
                self.eval_navigate(rel, from_attr, *axis, label, as_prefix, *mode)
            }
            Fetch {
                input,
                id_attr,
                what,
                as_name,
            } => {
                let doc = self.doc.ok_or(EvalError::NeedsDocument("Fetch"))?;
                let rel = self.eval(input)?;
                let idx = resolve(&rel.schema, id_attr)?;
                let mut schema = rel.schema.clone();
                schema.fields.push(Field::atom(as_name));
                let tuples = rel
                    .tuples
                    .iter()
                    .map(|t| {
                        let v = match flat_value(t, &idx).as_id() {
                            None => Value::Null,
                            Some(sid) => {
                                let n = NodeId(sid.pre);
                                match what {
                                    FetchWhat::Val => Value::str(doc.value(n)),
                                    FetchWhat::Cont => Value::str(doc.content(n)),
                                    FetchWhat::Tag => Value::str(doc.label(n)),
                                }
                            }
                        };
                        let mut nt = t.clone();
                        nt.0.push(v);
                        nt
                    })
                    .collect();
                Ok(Relation::new(schema, tuples))
            }
            DeriveAncestorId {
                input,
                attr,
                levels,
                as_name,
            } => {
                let rel = self.eval(input)?;
                self.eval_derive_ancestor(rel, attr, *levels, as_name)
            }
            CastSchema { input, schema } => {
                let rel = self.eval(input)?;
                fn shape_eq(a: &Schema, b: &Schema) -> bool {
                    a.arity() == b.arity()
                        && a.fields
                            .iter()
                            .zip(&b.fields)
                            .all(|(x, y)| match (&x.kind, &y.kind) {
                                (FieldKind::Atom, FieldKind::Atom) => true,
                                (FieldKind::Nested(m), FieldKind::Nested(n)) => shape_eq(m, n),
                                _ => false,
                            })
                }
                if !shape_eq(&rel.schema, schema) {
                    return Err(EvalError::TypeError(format!(
                        "cast shape mismatch: {} vs {}",
                        rel.schema, schema
                    )));
                }
                Ok(Relation::new(schema.clone(), rel.tuples))
            }
            Rename { input, names } => {
                let mut rel = self.eval(input)?;
                if names.len() != rel.schema.arity() {
                    return Err(EvalError::TypeError(format!(
                        "rename arity mismatch: {} names for {} fields",
                        names.len(),
                        rel.schema.arity()
                    )));
                }
                for (f, n) in rel.schema.fields.iter_mut().zip(names) {
                    f.name = n.clone();
                }
                Ok(rel)
            }
        }
    }

    // ------------------------------------------------------------------
    // selection

    fn eval_select(&self, rel: Relation, pred: &Predicate) -> Result<Relation, EvalError> {
        // `map`-extension with reduction for a single comparison over one
        // nested column (Example 1.2.2); plain existential otherwise.
        if let Predicate::Cmp(Operand::Col(p), op, Operand::Const(c)) = pred {
            let idx = resolve(&rel.schema, p)?;
            if crosses_collection(&rel.schema, &idx) {
                let tuples = rel
                    .tuples
                    .into_iter()
                    .filter_map(|t| {
                        reduce_tuple(&rel.schema, t, &idx, &mut |v| cmp_values(v, *op, c))
                    })
                    .collect();
                return Ok(Relation::new(rel.schema, tuples));
            }
        }
        let tuples = rel
            .tuples
            .iter()
            .filter(|t| self.eval_pred(&rel.schema, t, pred).unwrap_or(false))
            .cloned()
            .collect::<Vec<_>>();
        // validate attribute references eagerly for error reporting
        validate_pred(&rel.schema, pred)?;
        Ok(Relation::new(rel.schema, tuples))
    }

    /// Evaluate a predicate over one tuple, with existential semantics when
    /// column paths cross collection attributes.
    pub fn eval_pred(
        &self,
        schema: &Schema,
        tuple: &Tuple,
        pred: &Predicate,
    ) -> Result<bool, EvalError> {
        match pred {
            Predicate::True => Ok(true),
            Predicate::And(a, b) => {
                Ok(self.eval_pred(schema, tuple, a)? && self.eval_pred(schema, tuple, b)?)
            }
            Predicate::Or(a, b) => {
                Ok(self.eval_pred(schema, tuple, a)? || self.eval_pred(schema, tuple, b)?)
            }
            Predicate::Not(a) => Ok(!self.eval_pred(schema, tuple, a)?),
            Predicate::IsNull(p) => {
                let idx = resolve(schema, p)?;
                let vals = reachable_values(tuple, &idx);
                Ok(vals.iter().all(|v| v.is_null()) || vals.is_empty())
            }
            Predicate::NotNull(p) => {
                let idx = resolve(schema, p)?;
                Ok(reachable_values(tuple, &idx).iter().any(|v| !v.is_null()))
            }
            Predicate::Cmp(l, op, r) => {
                let lv = self.operand_values(schema, tuple, l)?;
                let rv = self.operand_values(schema, tuple, r)?;
                for a in &lv {
                    for b in &rv {
                        if cmp_values(a, *op, b) {
                            return Ok(true);
                        }
                    }
                }
                Ok(false)
            }
        }
    }

    fn operand_values(
        &self,
        schema: &Schema,
        tuple: &Tuple,
        op: &Operand,
    ) -> Result<Vec<Value>, EvalError> {
        match op {
            Operand::Const(v) => Ok(vec![v.clone()]),
            Operand::Col(p) => {
                let idx = resolve(schema, p)?;
                Ok(reachable_values(tuple, &idx))
            }
        }
    }

    // ------------------------------------------------------------------
    // projection

    fn eval_project(
        &self,
        rel: Relation,
        cols: &[Path],
        distinct: bool,
    ) -> Result<Relation, EvalError> {
        let spec = ProjSpec::build(&rel.schema, cols)?;
        let schema = spec.schema(&rel.schema);
        let mut tuples: Vec<Tuple> = rel.tuples.iter().map(|t| spec.apply(t)).collect();
        if distinct {
            let mut seen: HashSet<String> = HashSet::with_capacity(tuples.len());
            tuples.retain(|t| seen.insert(dedup_key(t)));
        }
        Ok(Relation::new(schema, tuples))
    }

    // ------------------------------------------------------------------
    // value joins

    fn eval_value_join(
        &self,
        l: Relation,
        r: Relation,
        pred: &Predicate,
        kind: JoinKind,
    ) -> Result<Relation, EvalError> {
        let combined = l.schema.concat(&r.schema);
        validate_pred(&combined, pred)?;
        // per-left match lists
        let mut matches: Vec<Vec<usize>> = vec![Vec::new(); l.len()];
        for (li, lt) in l.tuples.iter().enumerate() {
            for (ri, rt) in r.tuples.iter().enumerate() {
                let joined = lt.concat(rt);
                if self.eval_pred(&combined, &joined, pred)? {
                    matches[li].push(ri);
                }
            }
        }
        if let Some(m) = &self.metrics {
            m.borrow_mut().comparisons((l.len() * r.len()) as u64);
        }
        self.assemble_join(l, r, matches, kind, None)
    }

    // ------------------------------------------------------------------
    // structural joins

    #[allow(clippy::too_many_arguments)]
    fn eval_struct_join(
        &self,
        l: Relation,
        r: Relation,
        left_attr: &Path,
        right_attr: &Path,
        axis: Axis,
        kind: JoinKind,
        nest_as: Option<&str>,
    ) -> Result<Relation, EvalError> {
        let lidx = resolve(&l.schema, left_attr)?;
        let ridx = resolve(&r.schema, right_attr)?;
        if crosses_collection(&r.schema, &ridx) {
            return Err(EvalError::TypeError(
                "structural join right attribute must not be nested".into(),
            ));
        }
        if crosses_collection(&l.schema, &lidx) {
            return self.map_struct_join(l, r, &lidx, &ridx, axis, kind, nest_as);
        }
        // flat case: gather (sid, index), sort if needed, run StackTree
        let mut lids: Vec<(StructuralId, usize)> = Vec::new();
        for (i, t) in l.tuples.iter().enumerate() {
            if let Some(id) = flat_value(t, &lidx).as_id() {
                lids.push((id, i));
            }
        }
        let mut rids: Vec<(StructuralId, usize)> = Vec::new();
        for (i, t) in r.tuples.iter().enumerate() {
            if let Some(id) = flat_value(t, &ridx).as_id() {
                rids.push((id, i));
            }
        }
        let pairs = if self.config.use_stacktree {
            if !is_sorted_by_pre(&lids) {
                lids.sort_by_key(|(s, _)| s.pre);
            }
            if !is_sorted_by_pre(&rids) {
                rids.sort_by_key(|(s, _)| s.pre);
            }
            if self.config.columnar_kernels
                && lids.len() < u32::MAX as usize
                && rids.len() < u32::MAX as usize
            {
                // pack to structure-of-arrays and run the vectorized
                // merge; packing is one linear pass, like an index build
                let lc = IdColumns::from_pairs(&lids, DEFAULT_BLOCK);
                let rc = IdColumns::from_pairs(&rids, DEFAULT_BLOCK);
                match &self.metrics {
                    Some(m) => {
                        stack_tree_pairs_columnar_metered(&lc, &rc, axis, &mut *m.borrow_mut())
                    }
                    None => stack_tree_pairs_columnar(&lc, &rc, axis),
                }
            } else {
                let ix = self.config.use_skip_index.then(|| SkipIndex::build(&rids));
                match &self.metrics {
                    Some(m) => stack_tree_pairs_indexed_metered(
                        &lids,
                        &rids,
                        axis,
                        ix.as_ref(),
                        &mut *m.borrow_mut(),
                    ),
                    None => stack_tree_pairs_indexed(&lids, &rids, axis, ix.as_ref()),
                }
            }
        } else {
            if let Some(m) = &self.metrics {
                m.borrow_mut().comparisons((lids.len() * rids.len()) as u64);
            }
            nested_loop_pairs(&lids, &rids, axis)
        };
        let mut matches: Vec<Vec<usize>> = vec![Vec::new(); l.len()];
        for (li, ri) in pairs {
            matches[li].push(ri);
        }
        for m in &mut matches {
            m.sort_unstable();
        }
        self.assemble_join(l, r, matches, kind, nest_as)
    }

    /// Assemble join output from per-left match lists.
    fn assemble_join(
        &self,
        l: Relation,
        r: Relation,
        matches: Vec<Vec<usize>>,
        kind: JoinKind,
        nest_as: Option<&str>,
    ) -> Result<Relation, EvalError> {
        match kind {
            JoinKind::Inner => {
                let schema = l.schema.concat(&r.schema);
                let mut tuples = Vec::new();
                for (li, ms) in matches.iter().enumerate() {
                    for &ri in ms {
                        tuples.push(l.tuples[li].concat(&r.tuples[ri]));
                    }
                }
                Ok(Relation::new(schema, tuples))
            }
            JoinKind::Semi => {
                let tuples = matches
                    .iter()
                    .enumerate()
                    .filter(|(_, ms)| !ms.is_empty())
                    .map(|(li, _)| l.tuples[li].clone())
                    .collect();
                Ok(Relation::new(l.schema, tuples))
            }
            JoinKind::LeftOuter => {
                let schema = l.schema.concat(&r.schema);
                let r_arity = r.schema.arity();
                let mut tuples = Vec::new();
                for (li, ms) in matches.iter().enumerate() {
                    if ms.is_empty() {
                        tuples.push(l.tuples[li].concat(&Tuple::nulls(r_arity)));
                    } else {
                        for &ri in ms {
                            tuples.push(l.tuples[li].concat(&r.tuples[ri]));
                        }
                    }
                }
                Ok(Relation::new(schema, tuples))
            }
            JoinKind::Nest | JoinKind::NestOuter => {
                let name = nest_as.unwrap_or("s");
                let schema = l
                    .schema
                    .concat(&Schema::new(vec![Field::nested(name, r.schema.clone())]));
                let mut tuples = Vec::new();
                for (li, ms) in matches.iter().enumerate() {
                    if ms.is_empty() && kind == JoinKind::Nest {
                        continue;
                    }
                    let nested: Vec<Tuple> = ms.iter().map(|&ri| r.tuples[ri].clone()).collect();
                    let mut t = l.tuples[li].clone();
                    t.0.push(Value::Coll(Collection::list(nested)));
                    tuples.push(t);
                }
                Ok(Relation::new(schema, tuples))
            }
        }
    }

    // ------------------------------------------------------------------
    // holistic twig join

    /// Evaluate a whole tree pattern with the holistic twig merge
    /// ([`crate::twig::twig_join`]): one sorted ID stream per pattern
    /// node, no intermediate pair lists. Shapes the holistic operator
    /// does not cover — map-extended (dotted) attributes, or two steps
    /// hanging off *different* ID columns of the same input — fall back
    /// to the equivalent binary cascade, as does the whole operator when
    /// [`EvalConfig::use_twigstack`] is off.
    fn eval_twig_join(
        &self,
        root: &LogicalPlan,
        steps: &[TwigStep],
    ) -> Result<Relation, EvalError> {
        if steps.is_empty() {
            return self.eval(root);
        }
        if !self.config.use_twigstack {
            self.note_twig_fallback("use_twigstack off", steps.len());
            return self.eval(&twig_to_cascade(root, steps));
        }
        let mut rels: Vec<Relation> = Vec::with_capacity(steps.len() + 1);
        rels.push(self.eval(root)?);
        for s in steps {
            rels.push(self.eval(&s.input)?);
        }
        let schemas: Vec<&Schema> = rels.iter().map(|r| &r.schema).collect();
        let shape = match twig_shape(&schemas, steps) {
            Some(shape) => shape,
            None => {
                self.note_twig_fallback("shape not holistic-covered", steps.len());
                return self.eval(&twig_to_cascade(root, steps));
            }
        };
        let solutions = twig_solutions(&rels, &shape, steps, self.config, self.metrics.as_ref());
        // one output tuple per solution; twig_join already emits them in
        // the cascade's lexicographic order
        let mut tuples = Vec::with_capacity(solutions.len());
        for sol in &solutions {
            let mut t = rels[0].tuples[sol[0]].clone();
            for (j, &i) in sol.iter().enumerate().skip(1) {
                t = t.concat(&rels[j].tuples[i]);
            }
            tuples.push(t);
        }
        Ok(Relation::new(shape.schema, tuples))
    }

    /// Record a holistic-twig fallback to the binary cascade: counted in
    /// the metrics (when profiling) and reported at debug level.
    fn note_twig_fallback(&self, why: &str, steps: usize) {
        if let Some(m) = &self.metrics {
            m.borrow_mut().note_fallback();
        }
        tracing::debug!(
            target: "uload::eval",
            "twig join fell back to binary cascade ({steps} steps): {why}"
        );
    }

    // ------------------------------------------------------------------
    // profiled evaluation

    /// Evaluate `plan` while building an [`OpProfile`] tree mirroring the
    /// plan's shape (children in [`LogicalPlan::child_plans`] order).
    ///
    /// Each node's inputs are first profiled recursively and materialized
    /// as temporary scans in a shadow catalog; the node itself is then
    /// timed as a one-level plan over those temps with the metered
    /// kernels. `eval` itself is untouched — the unprofiled path pays
    /// nothing for this machinery. A node's `time_ns` includes its
    /// children's; its own share additionally covers re-reading the
    /// materialized inputs, so treat per-node times as indicative rather
    /// than exact.
    pub fn eval_profiled(&self, plan: &LogicalPlan) -> Result<(Relation, OpProfile), EvalError> {
        let children = plan.child_plans();
        let mut kid_profiles = Vec::with_capacity(children.len());
        let mut kid_rels = Vec::with_capacity(children.len());
        for c in &children {
            let (rel, prof) = self.eval_profiled(c)?;
            kid_profiles.push(prof);
            kid_rels.push(rel);
        }
        let metered = |catalog: &Catalog, one_level: &LogicalPlan| {
            let ev = Evaluator {
                catalog,
                doc: self.doc,
                config: self.config,
                metrics: Some(RefCell::new(ExecMetrics::default())),
            };
            let start = Instant::now();
            let rel = ev.eval(one_level)?;
            let elapsed = start.elapsed().as_nanos() as u64;
            let metrics = ev.metrics.expect("set above").into_inner();
            Ok::<_, EvalError>((rel, metrics, elapsed))
        };
        let (rel, metrics, self_ns) = if children.is_empty() {
            metered(self.catalog, plan)?
        } else {
            let mut shadow = Catalog::new();
            for (k, r) in kid_rels.into_iter().enumerate() {
                shadow.insert(format!("__prof_{k}"), r);
            }
            let one_level = plan.with_child_plans(
                (0..children.len())
                    .map(|k| LogicalPlan::scan(format!("__prof_{k}")))
                    .collect(),
            );
            metered(&shadow, &one_level)?
        };
        let child_ns: u64 = kid_profiles.iter().map(|p: &OpProfile| p.time_ns).sum();
        let profile = OpProfile {
            op: plan.node_label(),
            out_rows: rel.len() as u64,
            time_ns: self_ns + child_ns,
            metrics,
            children: kid_profiles,
        };
        Ok((rel, profile))
    }

    /// `map`-extended structural join: the left ID lives inside a nested
    /// collection attribute (Example 1.2.3). The join is applied inside each
    /// nested collection; left tuples whose every nested collection joins
    /// empty are eliminated (for the non-outer kinds).
    #[allow(clippy::too_many_arguments)]
    fn map_struct_join(
        &self,
        l: Relation,
        r: Relation,
        lidx: &[usize],
        ridx: &[usize],
        axis: Axis,
        kind: JoinKind,
        nest_as: Option<&str>,
    ) -> Result<Relation, EvalError> {
        // Split the path at the first collection crossing.
        let first = lidx[0];
        let inner_schema = match &l.schema.fields[first].kind {
            FieldKind::Nested(s) => s.clone(),
            FieldKind::Atom => {
                return Err(EvalError::TypeError(
                    "map struct join expected nested field".into(),
                ))
            }
        };
        let rest = &lidx[1..];
        // Recursively join the nested relation.
        let mut out_inner_schema: Option<Schema> = None;
        let mut tuples = Vec::new();
        for t in &l.tuples {
            let Value::Coll(c) = t.get(first) else {
                continue;
            };
            let inner_rel = Relation::new(inner_schema.clone(), c.tuples.clone());
            let joined = if crosses_collection(&inner_schema, rest) {
                self.map_struct_join(inner_rel, r.clone(), rest, ridx, axis, kind, nest_as)?
            } else {
                // delegate to flat join at this level
                let right_path = Path::new(index_path_name(&r.schema, ridx));
                let left_path = Path::new(index_path_name(&inner_schema, rest));
                self.eval_struct_join(
                    inner_rel,
                    r.clone(),
                    &left_path,
                    &right_path,
                    axis,
                    kind,
                    nest_as,
                )?
            };
            if out_inner_schema.is_none() {
                out_inner_schema = Some(joined.schema.clone());
            }
            let keep_empty = matches!(kind, JoinKind::LeftOuter | JoinKind::NestOuter);
            if joined.tuples.is_empty() && !keep_empty {
                continue; // eliminate: all nested maps empty
            }
            let mut nt = t.clone();
            nt.0[first] = Value::Coll(Collection::list(joined.tuples));
            tuples.push(nt);
        }
        let mut schema = l.schema.clone();
        if let Some(s) = out_inner_schema {
            schema.fields[first].kind = FieldKind::Nested(s);
        } else {
            // no tuples: compute schema structurally for consistency
            let dummy = Relation::empty(inner_schema);
            let right_path = Path::new(index_path_name(&r.schema, ridx));
            let left_path = Path::new(index_path_name(&dummy.schema, rest));
            let joined = self.eval_struct_join(
                dummy,
                r.clone(),
                &left_path,
                &right_path,
                axis,
                kind,
                nest_as,
            )?;
            schema.fields[first].kind = FieldKind::Nested(joined.schema);
        }
        Ok(Relation::new(schema, tuples))
    }

    // ------------------------------------------------------------------
    // group-by / unnest

    fn eval_group_by(
        &self,
        rel: Relation,
        keys: &[Path],
        nest_as: &str,
    ) -> Result<Relation, EvalError> {
        let key_idx: Vec<usize> = keys
            .iter()
            .map(|p| {
                let idx = resolve(&rel.schema, p)?;
                if idx.len() != 1 {
                    return Err(EvalError::TypeError(
                        "group-by keys must be top-level attributes".into(),
                    ));
                }
                Ok(idx[0])
            })
            .collect::<Result<_, _>>()?;
        let rest_idx: Vec<usize> = (0..rel.schema.arity())
            .filter(|i| !key_idx.contains(i))
            .collect();
        let rest_schema = Schema::new(
            rest_idx
                .iter()
                .map(|&i| rel.schema.fields[i].clone())
                .collect(),
        );
        let mut schema_fields: Vec<Field> = key_idx
            .iter()
            .map(|&i| rel.schema.fields[i].clone())
            .collect();
        schema_fields.push(Field::nested(nest_as, rest_schema));
        let schema = Schema::new(schema_fields);

        let mut order: Vec<String> = Vec::new();
        let mut groups: HashMap<String, (Tuple, Vec<Tuple>)> = HashMap::new();
        for t in &rel.tuples {
            let key_vals: Vec<Value> = key_idx.iter().map(|&i| t.get(i).clone()).collect();
            let rest_vals: Vec<Value> = rest_idx.iter().map(|&i| t.get(i).clone()).collect();
            let key = format!("{}", Tuple::new(key_vals.clone()));
            groups
                .entry(key.clone())
                .or_insert_with(|| {
                    order.push(key);
                    (Tuple::new(key_vals), Vec::new())
                })
                .1
                .push(Tuple::new(rest_vals));
        }
        let tuples = order
            .into_iter()
            .map(|k| {
                let (mut key_tuple, rest) = groups.remove(&k).unwrap();
                key_tuple.0.push(Value::Coll(Collection::list(rest)));
                key_tuple
            })
            .collect();
        Ok(Relation::new(schema, tuples))
    }

    fn eval_unnest(&self, rel: Relation, attr: &Path) -> Result<Relation, EvalError> {
        let idx = resolve(&rel.schema, attr)?;
        if idx.len() != 1 {
            return Err(EvalError::TypeError(
                "unnest attribute must be top-level".into(),
            ));
        }
        let i = idx[0];
        let inner = match &rel.schema.fields[i].kind {
            FieldKind::Nested(s) => s.clone(),
            FieldKind::Atom => {
                return Err(EvalError::TypeError("unnest of atomic attribute".into()))
            }
        };
        let mut fields = Vec::new();
        for (j, f) in rel.schema.fields.iter().enumerate() {
            if j == i {
                fields.extend(inner.fields.iter().cloned());
            } else {
                fields.push(f.clone());
            }
        }
        let schema = Schema::new(fields);
        let mut tuples = Vec::new();
        for t in &rel.tuples {
            if let Value::Coll(c) = t.get(i) {
                for nt in &c.tuples {
                    let mut vals = Vec::with_capacity(schema.arity());
                    for (j, v) in t.0.iter().enumerate() {
                        if j == i {
                            vals.extend(nt.0.iter().cloned());
                        } else {
                            vals.push(v.clone());
                        }
                    }
                    tuples.push(Tuple::new(vals));
                }
            }
        }
        Ok(Relation::new(schema, tuples))
    }

    // ------------------------------------------------------------------
    // document-backed operators

    fn eval_navigate(
        &self,
        rel: Relation,
        from_attr: &Path,
        axis: Axis,
        label: &str,
        as_prefix: &str,
        mode: NavMode,
    ) -> Result<Relation, EvalError> {
        let doc = self.doc.ok_or(EvalError::NeedsDocument("Navigate"))?;
        let idx = resolve(&rel.schema, from_attr)?;
        if crosses_collection(&rel.schema, &idx) {
            return Err(EvalError::TypeError(
                "navigate source attribute must not be nested".into(),
            ));
        }
        let mut schema = rel.schema.clone();
        if mode != NavMode::Exists {
            schema.fields.push(Field::atom(format!("{as_prefix}_ID")));
            schema.fields.push(Field::atom(format!("{as_prefix}_Val")));
            schema.fields.push(Field::atom(format!("{as_prefix}_Cont")));
        }
        let mut tuples = Vec::new();
        for t in &rel.tuples {
            let targets: Vec<NodeId> = match flat_value(t, &idx).as_id() {
                None => Vec::new(),
                Some(sid) => {
                    let n = NodeId(sid.pre);
                    let (want_attr, want) = match label.strip_prefix('@') {
                        Some(a) => (true, a),
                        None => (false, label),
                    };
                    let matches_label = |doc: &Document, m: NodeId| -> bool {
                        let k = doc.kind(m);
                        if want_attr {
                            k == NodeKind::Attribute && doc.label(m) == want
                        } else if want == "*" {
                            k == NodeKind::Element
                        } else {
                            k == NodeKind::Element && doc.label(m) == want
                        }
                    };
                    match axis {
                        Axis::Child => doc
                            .children(n)
                            .iter()
                            .copied()
                            .filter(|&m| matches_label(doc, m))
                            .collect(),
                        Axis::Descendant => doc
                            .descendants(n)
                            .filter(|&m| matches_label(doc, m))
                            .collect(),
                    }
                }
            };
            match mode {
                NavMode::Exists => {
                    if !targets.is_empty() {
                        tuples.push(t.clone());
                    }
                }
                NavMode::Outer if targets.is_empty() => {
                    let mut nt = t.clone();
                    nt.0.push(Value::Null);
                    nt.0.push(Value::Null);
                    nt.0.push(Value::Null);
                    tuples.push(nt);
                }
                _ => {
                    for m in targets {
                        let mut nt = t.clone();
                        nt.0.push(Value::Id(doc.structural_id(m)));
                        nt.0.push(Value::str(doc.value(m)));
                        nt.0.push(Value::str(doc.content(m)));
                        tuples.push(nt);
                    }
                }
            }
        }
        Ok(Relation::new(schema, tuples))
    }

    fn eval_derive_ancestor(
        &self,
        rel: Relation,
        attr: &Path,
        levels: u16,
        as_name: &str,
    ) -> Result<Relation, EvalError> {
        let doc = self
            .doc
            .ok_or(EvalError::NeedsDocument("DeriveAncestorId"))?;
        let idx = resolve(&rel.schema, attr)?;
        let mut schema = rel.schema.clone();
        schema.fields.push(Field::atom(as_name));
        let mut tuples = Vec::new();
        for t in &rel.tuples {
            let anc = flat_value(t, &idx).as_id().and_then(|sid| {
                let mut n = NodeId(sid.pre);
                for _ in 0..levels {
                    n = doc.parent(n)?;
                }
                Some(doc.structural_id(n))
            });
            let mut nt = t.clone();
            nt.0.push(anc.map(Value::Id).unwrap_or(Value::Null));
            tuples.push(nt);
        }
        Ok(Relation::new(schema, tuples))
    }
}

// ----------------------------------------------------------------------
// path utilities

/// Resolve a dotted path to field indexes.
fn resolve(schema: &Schema, p: &Path) -> Result<Vec<usize>, EvalError> {
    schema
        .resolve(p.as_str())
        .ok_or_else(|| EvalError::UnknownAttribute(p.as_str().to_string()))
}

/// Does the prefix of this index path (all but the last step) cross a
/// nested collection?
fn crosses_collection(schema: &Schema, idx: &[usize]) -> bool {
    if idx.len() <= 1 {
        return false;
    }
    matches!(schema.fields[idx[0]].kind, FieldKind::Nested(_))
}

/// Value at a flat (non-collection-crossing) index path.
fn flat_value(t: &Tuple, idx: &[usize]) -> Value {
    debug_assert_eq!(idx.len(), 1);
    t.get(idx[0]).clone()
}

/// All atomic values reachable at an index path, descending through nested
/// collections (existential `map` semantics).
fn reachable_values(t: &Tuple, idx: &[usize]) -> Vec<Value> {
    fn rec(v: &Value, rest: &[usize], out: &mut Vec<Value>) {
        match (v, rest) {
            (v, []) => out.push(v.clone()),
            (Value::Coll(c), rest) => {
                for t in &c.tuples {
                    rec(t.get(rest[0]), &rest[1..], out);
                }
            }
            _ => out.push(Value::Null),
        }
    }
    let mut out = Vec::new();
    rec(t.get(idx[0]), &idx[1..], &mut out);
    out
}

/// Reduce a tuple on a nested path: keep only nested tuples whose value at
/// the path satisfies `f`; eliminate the tuple if nothing remains
/// (Example 1.2.2's `map(σ, r, A1.A11)`).
fn reduce_tuple(
    _schema: &Schema,
    mut t: Tuple,
    idx: &[usize],
    f: &mut dyn FnMut(&Value) -> bool,
) -> Option<Tuple> {
    fn rec(v: &mut Value, rest: &[usize], f: &mut dyn FnMut(&Value) -> bool) -> bool {
        match v {
            Value::Coll(c) => {
                c.tuples.retain_mut(|t| {
                    let inner = &mut t.0[rest[0]];
                    rec(inner, &rest[1..], f)
                });
                !c.tuples.is_empty()
            }
            v => {
                if rest.is_empty() {
                    f(v)
                } else {
                    false
                }
            }
        }
    }
    let keep = rec(&mut t.0[idx[0]], &idx[1..], f);
    keep.then_some(t)
}

fn cmp_values(a: &Value, op: CmpOp, b: &Value) -> bool {
    use std::cmp::Ordering::*;
    match op {
        CmpOp::Parent => match (a.as_id(), b.as_id()) {
            (Some(x), Some(y)) => x.is_parent_of(y),
            _ => false,
        },
        CmpOp::Ancestor => match (a.as_id(), b.as_id()) {
            (Some(x), Some(y)) => x.is_ancestor_of(y),
            _ => false,
        },
        CmpOp::Contains => match (a, b) {
            (Value::Str(x), Value::Str(y)) => x.contains(y.as_ref()),
            _ => false,
        },
        _ => match a.compare(b) {
            None => false,
            Some(ord) => match op {
                CmpOp::Eq => ord == Equal,
                CmpOp::Ne => ord != Equal,
                CmpOp::Lt => ord == Less,
                CmpOp::Le => ord != Greater,
                CmpOp::Gt => ord == Greater,
                CmpOp::Ge => ord != Less,
                CmpOp::Parent | CmpOp::Ancestor | CmpOp::Contains => unreachable!(),
            },
        },
    }
}

fn validate_pred(schema: &Schema, pred: &Predicate) -> Result<(), EvalError> {
    match pred {
        Predicate::Cmp(l, _, r) => {
            if let Operand::Col(p) = l {
                resolve(schema, p)?;
            }
            if let Operand::Col(p) = r {
                resolve(schema, p)?;
            }
            Ok(())
        }
        Predicate::IsNull(p) | Predicate::NotNull(p) => resolve(schema, p).map(|_| ()),
        Predicate::And(a, b) | Predicate::Or(a, b) => {
            validate_pred(schema, a)?;
            validate_pred(schema, b)
        }
        Predicate::Not(a) => validate_pred(schema, a),
        Predicate::True => Ok(()),
    }
}

fn is_sorted_by_pre(ids: &[(StructuralId, usize)]) -> bool {
    ids.windows(2).all(|w| w[0].0.pre <= w[1].0.pre)
}

// ----------------------------------------------------------------------
// duplicate elimination

/// Canonical key for duplicate elimination: two tuples map to the same
/// key iff [`tuple_cmp_all`] orders them `Equal`. Values are type-tagged
/// (`Int(1)` and `Str("1")` never collide), strings are length-prefixed,
/// IDs key on `pre` alone (the equality class of [`value_cmp`]), and
/// collections recurse element-wise ignoring their [`CollKind`], exactly
/// as the comparator does.
pub(crate) fn dedup_key(t: &Tuple) -> String {
    let mut out = String::new();
    write_tuple_key(t, &mut out);
    out
}

fn write_tuple_key(t: &Tuple, out: &mut String) {
    use std::fmt::Write as _;
    let _ = write!(out, "({}", t.arity());
    for i in 0..t.arity() {
        write_value_key(t.get(i), out);
    }
    out.push(')');
}

fn write_value_key(v: &Value, out: &mut String) {
    use std::fmt::Write as _;
    match v {
        Value::Null => out.push('n'),
        Value::Id(id) => {
            let _ = write!(out, "i{}", id.pre);
        }
        Value::Int(x) => {
            let _ = write!(out, "d{x}");
        }
        Value::Str(s) => {
            let _ = write!(out, "s{}:{s}", s.len());
        }
        Value::Coll(c) => {
            let _ = write!(out, "c{}", c.tuples.len());
            for t in &c.tuples {
                write_tuple_key(t, out);
            }
        }
    }
}

// ----------------------------------------------------------------------
// twig shape analysis (shared with the pipelined executor)

/// The holistic operator's view of a twig's inputs: the single ID column
/// of each input the pattern references, each step's parent
/// pattern-node index, and the concatenated output schema (root, then
/// step inputs in order — the cascade's own output shape).
#[derive(Debug, Clone)]
pub(crate) struct TwigShape {
    pub node_attr: Vec<usize>,
    pub parents: Vec<usize>,
    pub schema: Schema,
}

/// Resolve a twig's step attributes against its inputs' schemas, in the
/// exact order the binary cascade would. `None` means the shape is not
/// covered by the holistic operator — map-extended (dotted) attributes,
/// or two steps hanging off *different* ID columns of one input — and
/// the caller must fall back to the cascade.
pub(crate) fn twig_shape(schemas: &[&Schema], steps: &[TwigStep]) -> Option<TwigShape> {
    debug_assert_eq!(schemas.len(), steps.len() + 1);
    // field-offset ranges of each input in the concatenated schema
    let mut offsets: Vec<usize> = Vec::with_capacity(schemas.len() + 1);
    offsets.push(0);
    for s in schemas {
        offsets.push(offsets.last().unwrap() + s.arity());
    }
    // node_attr[j]: the single ID column of input j the pattern uses
    let mut node_attr: Vec<Option<usize>> = vec![None; schemas.len()];
    let mut parents: Vec<usize> = Vec::with_capacity(steps.len());
    let mut prefix = schemas[0].clone();
    for (k, s) in steps.iter().enumerate() {
        // the step's own attribute, inside its input
        match schemas[k + 1].resolve(s.attr.as_str()) {
            Some(idx) if idx.len() == 1 => node_attr[k + 1] = Some(idx[0]),
            _ => return None,
        }
        // the parent attribute, against the concatenated prefix
        // (exactly what the cascade's left side would resolve on)
        match prefix.resolve(s.parent_attr.as_str()) {
            Some(idx) if idx.len() == 1 => {
                let flat = idx[0];
                let p = offsets.partition_point(|&o| o <= flat) - 1;
                let local = flat - offsets[p];
                match node_attr[p] {
                    None => node_attr[p] = Some(local),
                    Some(prev) if prev == local => {}
                    Some(_) => return None,
                }
                parents.push(p);
            }
            _ => return None,
        }
        prefix = prefix.concat(schemas[k + 1]);
    }
    Some(TwigShape {
        node_attr: node_attr
            .into_iter()
            .map(|a| a.expect("every pattern node is referenced"))
            .collect(),
        parents,
        schema: prefix,
    })
}

/// Run the holistic multi-way merge over materialized twig inputs whose
/// shape was validated by [`twig_shape`]: one row-index vector per
/// solution (root first), in the cascade's lexicographic order.
pub(crate) fn twig_solutions(
    rels: &[Relation],
    shape: &TwigShape,
    steps: &[TwigStep],
    config: EvalConfig,
    metrics: Option<&RefCell<ExecMetrics>>,
) -> Vec<Vec<usize>> {
    let mut pattern = TwigPattern::root();
    for (k, s) in steps.iter().enumerate() {
        let id = pattern.add_child(shape.parents[k], s.axis);
        debug_assert_eq!(id, k + 1);
    }
    let mut streams: Vec<Vec<(StructuralId, usize)>> = Vec::with_capacity(rels.len());
    for (j, r) in rels.iter().enumerate() {
        let col = shape.node_attr[j];
        let mut ids: Vec<(StructuralId, usize)> = r
            .tuples
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.get(col).as_id().map(|sid| (sid, i)))
            .collect();
        if !is_sorted_by_pre(&ids) {
            ids.sort_by_key(|(s, _)| s.pre);
        }
        streams.push(ids);
    }
    if config.columnar_kernels && streams.iter().all(|s| s.len() < u32::MAX as usize) {
        // pack each stream to structure-of-arrays — one linear pass per
        // stream, like the index builds — and run the vectorized merge
        let cols: Vec<IdColumns> = streams
            .iter()
            .map(|s| IdColumns::from_pairs(s, DEFAULT_BLOCK))
            .collect();
        let refs: Vec<&IdColumns> = cols.iter().collect();
        return match metrics {
            Some(m) => twig_join_columnar_metered(&pattern, &refs, &mut *m.borrow_mut()),
            None => twig_join_columnar(&pattern, &refs),
        };
    }
    let refs: Vec<&[(StructuralId, usize)]> = streams.iter().map(|s| s.as_slice()).collect();
    // index build is one O(n/block) pass per stream — negligible next to
    // the merge, and it unlocks the kernel's seek-based pruning
    let indexes: Vec<SkipIndex> = if config.use_skip_index {
        streams.iter().map(|s| SkipIndex::build(s)).collect()
    } else {
        Vec::new()
    };
    let opts: Vec<Option<&SkipIndex>> = if config.use_skip_index {
        indexes.iter().map(Some).collect()
    } else {
        vec![None; refs.len()]
    };
    match metrics {
        Some(m) => twig_join_indexed_metered(&pattern, &refs, &opts, &mut *m.borrow_mut()),
        None => twig_join_indexed(&pattern, &refs, &opts),
    }
}

/// Dotted name of an index path (for re-entrant resolution in map joins).
fn index_path_name(schema: &Schema, idx: &[usize]) -> String {
    let mut names = Vec::new();
    let mut s = schema;
    for (k, &i) in idx.iter().enumerate() {
        names.push(s.fields[i].name.clone());
        if k + 1 < idx.len() {
            s = match &s.fields[i].kind {
                FieldKind::Nested(n) => n,
                FieldKind::Atom => break,
            };
        }
    }
    names.join(".")
}

// ----------------------------------------------------------------------
// projection spec

/// Compiled projection: which fields to keep, with optional nested
/// sub-projections.
struct ProjSpec {
    keep: Vec<(usize, Option<ProjSpec>)>,
}

impl ProjSpec {
    fn build(schema: &Schema, cols: &[Path]) -> Result<ProjSpec, EvalError> {
        // Group paths by leading segment, preserving first-appearance order.
        let mut order: Vec<String> = Vec::new();
        let mut groups: HashMap<String, Vec<String>> = HashMap::new();
        for c in cols {
            let (head, rest) = match c.as_str().split_once('.') {
                Some((h, r)) => (h.to_string(), Some(r.to_string())),
                None => (c.as_str().to_string(), None),
            };
            let e = groups.entry(head.clone()).or_insert_with(|| {
                order.push(head);
                Vec::new()
            });
            if let Some(r) = rest {
                e.push(r);
            }
        }
        let mut keep = Vec::new();
        for head in order {
            let i = schema
                .index_of(&head)
                .ok_or_else(|| EvalError::UnknownAttribute(head.clone()))?;
            let subs = &groups[&head];
            if subs.is_empty() {
                keep.push((i, None));
            } else {
                let inner = match &schema.fields[i].kind {
                    FieldKind::Nested(s) => s,
                    FieldKind::Atom => {
                        return Err(EvalError::UnknownAttribute(format!("{head}.{}", subs[0])))
                    }
                };
                let sub_paths: Vec<Path> = subs.iter().map(|s| Path::new(s.clone())).collect();
                keep.push((i, Some(ProjSpec::build(inner, &sub_paths)?)));
            }
        }
        Ok(ProjSpec { keep })
    }

    fn schema(&self, schema: &Schema) -> Schema {
        let fields = self
            .keep
            .iter()
            .map(|(i, sub)| {
                let f = &schema.fields[*i];
                match sub {
                    None => f.clone(),
                    Some(spec) => {
                        let inner = match &f.kind {
                            FieldKind::Nested(s) => spec.schema(s),
                            FieldKind::Atom => unreachable!(),
                        };
                        Field::nested(f.name.clone(), inner)
                    }
                }
            })
            .collect();
        Schema::new(fields)
    }

    fn apply(&self, t: &Tuple) -> Tuple {
        let vals = self
            .keep
            .iter()
            .map(|(i, sub)| {
                let v = t.get(*i);
                match sub {
                    None => v.clone(),
                    Some(spec) => match v {
                        Value::Coll(c) => Value::Coll(Collection {
                            kind: c.kind,
                            tuples: c.tuples.iter().map(|nt| spec.apply(nt)).collect(),
                        }),
                        _ => Value::Null,
                    },
                }
            })
            .collect();
        Tuple::new(vals)
    }
}

/// Project a materialized relation to the given dotted paths (public
/// wrapper over the evaluator's projection, used by layers that need to
/// project schemas/relations outside a plan — e.g. XAM binding schemas).
pub fn project_relation(rel: &Relation, paths: &[Path]) -> Result<Relation, EvalError> {
    let spec = ProjSpec::build(&rel.schema, paths)?;
    let schema = spec.schema(&rel.schema);
    let tuples = rel.tuples.iter().map(|t| spec.apply(t)).collect();
    Ok(Relation::new(schema, tuples))
}

// ----------------------------------------------------------------------
// convenience constructors for catalogs over documents

/// Build the *tag-derived list* `R_t(ID, Tag, Val, Cont)` of Definition
/// 2.2.1 for a label (element nodes), in document order.
pub fn tag_derived(doc: &Document, label: &str) -> Relation {
    derived(doc, Some(label), NodeKind::Element)
}

/// `R_t^α` for attributes with the given name.
pub fn tag_derived_attr(doc: &Document, label: &str) -> Relation {
    derived(doc, Some(label), NodeKind::Attribute)
}

/// `R_*`: all elements.
pub fn all_elements(doc: &Document) -> Relation {
    derived(doc, None, NodeKind::Element)
}

/// `R_*^α`: all attributes.
pub fn all_attributes(doc: &Document) -> Relation {
    derived(doc, None, NodeKind::Attribute)
}

fn derived(doc: &Document, label: Option<&str>, kind: NodeKind) -> Relation {
    let schema = Schema::atoms(&["ID", "Tag", "Val", "Cont"]);
    let nodes: Vec<NodeId> = match label {
        Some(l) => doc.nodes_with_label(l, kind).collect(),
        None => doc.all_nodes().filter(|&n| doc.kind(n) == kind).collect(),
    };
    let tuples = nodes
        .into_iter()
        .map(|n| {
            Tuple::new(vec![
                Value::Id(doc.structural_id(n)),
                Value::str(doc.label(n)),
                Value::str(doc.value(n)),
                Value::str(doc.content(n)),
            ])
        })
        .collect();
    Relation::new(schema, tuples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmltree::generate::bib_sample;

    fn setup() -> (Document, Catalog) {
        let doc = bib_sample();
        let mut cat = Catalog::new();
        for l in ["library", "book", "phdthesis", "title", "author"] {
            cat.insert_ordered(l, tag_derived(&doc, l), OrderSpec::by("ID"));
        }
        cat.insert("year_attr", tag_derived_attr(&doc, "year"));
        (doc, cat)
    }

    #[test]
    fn scan_and_select() {
        let (_doc, cat) = setup();
        let ev = Evaluator::new(&cat);
        let r = ev.eval(&LogicalPlan::scan("book")).unwrap();
        assert_eq!(r.len(), 2);
        let p =
            LogicalPlan::scan("title").select(Predicate::eq("Val", Value::str("Data on the Web")));
        let r = ev.eval(&p).unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn unknown_relation_and_attribute_errors() {
        let (_doc, cat) = setup();
        let ev = Evaluator::new(&cat);
        assert!(matches!(
            ev.eval(&LogicalPlan::scan("nope")),
            Err(EvalError::UnknownRelation(_))
        ));
        let p = LogicalPlan::scan("book").select(Predicate::eq("Nope", Value::Int(1)));
        assert!(matches!(ev.eval(&p), Err(EvalError::UnknownAttribute(_))));
    }

    #[test]
    fn structural_join_parent_child() {
        let (_doc, cat) = setup();
        let ev = Evaluator::new(&cat);
        // book ⋈≺ author: 2 books, first has 2 authors, second has 1
        let p = LogicalPlan::scan("book").struct_join(
            LogicalPlan::scan("author"),
            "ID",
            "ID",
            Axis::Child,
            JoinKind::Inner,
        );
        let r = ev.eval(&p).unwrap();
        assert_eq!(r.len(), 3);
        assert_eq!(r.schema.arity(), 8);
    }

    #[test]
    fn structural_semijoin_and_outerjoin() {
        let (_doc, cat) = setup();
        let ev = Evaluator::new(&cat);
        // books having a year attribute: only the 1999 one
        let semi = LogicalPlan::scan("book").struct_join(
            LogicalPlan::scan("year_attr"),
            "ID",
            "ID",
            Axis::Child,
            JoinKind::Semi,
        );
        let r = ev.eval(&semi).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.schema.arity(), 4);
        // outer join keeps both books, padding the second with nulls
        let outer = LogicalPlan::scan("book").struct_join(
            LogicalPlan::scan("year_attr"),
            "ID",
            "ID",
            Axis::Child,
            JoinKind::LeftOuter,
        );
        let r = ev.eval(&outer).unwrap();
        assert_eq!(r.len(), 2);
        assert!(r.tuples[1].get(4).is_null());
    }

    #[test]
    fn nest_structural_join() {
        let (_doc, cat) = setup();
        let ev = Evaluator::new(&cat);
        let p = LogicalPlan::scan("book").struct_nest_join(
            LogicalPlan::scan("author"),
            "ID",
            "ID",
            Axis::Child,
            false,
            "authors",
        );
        let r = ev.eval(&p).unwrap();
        assert_eq!(r.len(), 2);
        let first_authors = r.tuples[0].get(4).as_coll().unwrap();
        assert_eq!(first_authors.len(), 2);
        // nest-outer keeps books without authors too (none here, same count)
        let p2 = LogicalPlan::scan("book").struct_nest_join(
            LogicalPlan::scan("year_attr"),
            "ID",
            "ID",
            Axis::Child,
            true,
            "years",
        );
        let r2 = ev.eval(&p2).unwrap();
        assert_eq!(r2.len(), 2);
        assert_eq!(r2.tuples[1].get(4).as_coll().unwrap().len(), 0);
    }

    #[test]
    fn descendant_axis_join() {
        let (_doc, cat) = setup();
        let ev = Evaluator::new(&cat);
        let p = LogicalPlan::scan("library").struct_join(
            LogicalPlan::scan("title"),
            "ID",
            "ID",
            Axis::Descendant,
            JoinKind::Inner,
        );
        let r = ev.eval(&p).unwrap();
        assert_eq!(r.len(), 3); // all three titles are descendants
    }

    #[test]
    fn stacktree_matches_nested_loop() {
        let (_doc, cat) = setup();
        let mut ev = Evaluator::new(&cat);
        let p = LogicalPlan::scan("library").struct_join(
            LogicalPlan::scan("author"),
            "ID",
            "ID",
            Axis::Descendant,
            JoinKind::Inner,
        );
        let a = ev.eval(&p).unwrap();
        ev.config.use_stacktree = false;
        let b = ev.eval(&p).unwrap();
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn projection_flat_and_nested() {
        let (_doc, cat) = setup();
        let ev = Evaluator::new(&cat);
        let p = LogicalPlan::scan("book")
            .struct_nest_join(
                LogicalPlan::scan("author"),
                "ID",
                "ID",
                Axis::Child,
                false,
                "authors",
            )
            .project(&["ID", "authors.Val"]);
        let r = ev.eval(&p).unwrap();
        assert_eq!(r.schema.to_string(), "(ID, authors(Val))");
        let auth = r.tuples[0].get(1).as_coll().unwrap();
        assert_eq!(auth.tuples[0].arity(), 1);
    }

    #[test]
    fn distinct_projection() {
        let (_doc, cat) = setup();
        let ev = Evaluator::new(&cat);
        let p = LogicalPlan::scan("author").project(&["Tag"]);
        let r = ev.eval(&p).unwrap();
        assert_eq!(r.len(), 4);
        let p = LogicalPlan::scan("author").project_distinct(&["Tag"]);
        let r = ev.eval(&p).unwrap();
        assert_eq!(r.len(), 1);
    }

    /// Regression for the `O(n²)` `seen` scan the hashed key set
    /// replaced: 10k duplicates collapse to their distinct values, with
    /// the comparator's exact equality classes (order preserved
    /// first-seen, `Int(1)` ≠ `Str("1")`, nulls equal each other, IDs
    /// equal by `pre` alone, collections compared element-wise).
    #[test]
    fn distinct_projection_hashes_10k_duplicates() {
        let schema = Schema::atoms(&["K", "V"]);
        let mut tuples = Vec::with_capacity(10_000);
        for i in 0..10_000u32 {
            let v = match i % 5 {
                0 => Value::Int(1),
                1 => Value::str("1"),
                2 => Value::Null,
                3 => Value::Coll(Collection::list(vec![Tuple::new(vec![Value::Int(7)])])),
                _ => Value::str("x"),
            };
            tuples.push(Tuple::new(vec![Value::Int((i % 10) as i64 / 5), v]));
        }
        let mut cat = Catalog::new();
        cat.insert("dup", Relation::new(schema, tuples));
        let ev = Evaluator::new(&cat);
        let r = ev
            .eval(&LogicalPlan::scan("dup").project_distinct(&["K", "V"]))
            .unwrap();
        assert_eq!(r.len(), 10, "5 values × 2 keys survive");
        // the hashed keys respect tuple_cmp_all's equality exactly
        for (a, b) in [(0usize, 1usize), (2, 3)] {
            assert_ne!(
                dedup_key(&r.tuples[a]),
                dedup_key(&r.tuples[b]),
                "{} vs {}",
                r.tuples[a],
                r.tuples[b]
            );
        }
        for t in &r.tuples {
            assert_eq!(dedup_key(t), dedup_key(&t.clone()));
        }
        // first-seen order is preserved, as with the old scan
        assert_eq!(r.tuples[0].get(1), &Value::Int(1));
        assert_eq!(r.tuples[1].get(1), &Value::str("1"));
    }

    #[test]
    fn value_join_and_semijoin() {
        let (_doc, cat) = setup();
        let ev = Evaluator::new(&cat);
        // self-join titles on equal values: 3 tuples (each matches itself)
        let p = LogicalPlan::Project {
            input: Box::new(LogicalPlan::scan("title")),
            cols: vec![Path::new("Val")],
            distinct: false,
        }
        .join(
            LogicalPlan::scan("title").project(&["Cont"]),
            Predicate::True,
            JoinKind::Inner,
        );
        let r = ev.eval(&p).unwrap();
        assert_eq!(r.len(), 9); // cross product via true predicate
    }

    #[test]
    fn union_difference() {
        let (_doc, cat) = setup();
        let ev = Evaluator::new(&cat);
        let u = LogicalPlan::scan("book").union(LogicalPlan::scan("phdthesis"));
        assert_eq!(ev.eval(&u).unwrap().len(), 3);
        let d = LogicalPlan::scan("book").difference(LogicalPlan::scan("book"));
        assert_eq!(ev.eval(&d).unwrap().len(), 0);
        // arity mismatch errors
        let bad = LogicalPlan::scan("book").union(LogicalPlan::scan("book").project(&["ID"]));
        assert!(ev.eval(&bad).is_err());
    }

    #[test]
    fn group_by_and_unnest_roundtrip() {
        let (_doc, cat) = setup();
        let ev = Evaluator::new(&cat);
        let g = LogicalPlan::GroupBy {
            input: Box::new(LogicalPlan::scan("author").project(&["Tag", "Val"])),
            keys: vec![Path::new("Tag")],
            nest_as: "vals".into(),
        };
        let r = ev.eval(&g).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.tuples[0].get(1).as_coll().unwrap().len(), 4);
        let u = LogicalPlan::Unnest {
            input: Box::new(g),
            attr: Path::new("vals"),
        };
        let r = ev.eval(&u).unwrap();
        assert_eq!(r.len(), 4);
        assert_eq!(r.schema.arity(), 2);
    }

    #[test]
    fn nested_select_reduces() {
        let (_doc, cat) = setup();
        let ev = Evaluator::new(&cat);
        // nest authors under books, then select books having author "Suciu";
        // the nested collection is reduced to the matching author.
        let p = LogicalPlan::scan("book")
            .struct_nest_join(
                LogicalPlan::scan("author"),
                "ID",
                "ID",
                Axis::Child,
                false,
                "authors",
            )
            .select(Predicate::eq("authors.Val", Value::str("Suciu")));
        let r = ev.eval(&p).unwrap();
        assert_eq!(r.len(), 1);
        let auth = r.tuples[0].get(4).as_coll().unwrap();
        assert_eq!(auth.len(), 1);
        assert_eq!(auth.tuples[0].get(2).as_str(), Some("Suciu"));
    }

    #[test]
    fn map_struct_join_into_nested() {
        let (_doc, cat) = setup();
        let ev = Evaluator::new(&cat);
        // nest books under library, then struct-join authors inside nest
        let p = LogicalPlan::scan("library")
            .struct_nest_join(
                LogicalPlan::scan("book"),
                "ID",
                "ID",
                Axis::Child,
                false,
                "books",
            )
            .struct_join(
                LogicalPlan::scan("author"),
                "books.ID",
                "ID",
                Axis::Child,
                JoinKind::Inner,
            );
        let r = ev.eval(&p).unwrap();
        assert_eq!(r.len(), 1);
        // nested books collection now pairs each book with its authors
        let books = r.tuples[0].get(4).as_coll().unwrap();
        assert_eq!(books.len(), 3); // (book1,a1),(book1,a2),(book2,a3)
    }

    #[test]
    fn sort_by_value() {
        let (_doc, cat) = setup();
        let ev = Evaluator::new(&cat);
        let p = LogicalPlan::scan("author").sort(&["Val"]);
        let r = ev.eval(&p).unwrap();
        let vals: Vec<_> = r
            .tuples
            .iter()
            .map(|t| t.get(2).as_str().unwrap().to_string())
            .collect();
        let mut sorted = vals.clone();
        sorted.sort();
        assert_eq!(vals, sorted);
    }

    #[test]
    fn navigate_from_ids() {
        let (doc, cat) = setup();
        let ev = Evaluator::with_document(&cat, &doc);
        let p = LogicalPlan::Navigate {
            input: Box::new(LogicalPlan::scan("book")),
            from_attr: Path::new("ID"),
            axis: Axis::Child,
            label: "author".into(),
            as_prefix: "a".into(),
            mode: NavMode::Flat,
        };
        let r = ev.eval(&p).unwrap();
        assert_eq!(r.len(), 3);
        assert!(r.schema.index_of("a_Val").is_some());
        // without a document the operator errors
        let ev2 = Evaluator::new(&cat);
        assert!(matches!(ev2.eval(&p), Err(EvalError::NeedsDocument(_))));
    }

    #[test]
    fn derive_ancestor_ids() {
        let (doc, cat) = setup();
        let ev = Evaluator::with_document(&cat, &doc);
        let p = LogicalPlan::DeriveAncestorId {
            input: Box::new(LogicalPlan::scan("author")),
            attr: Path::new("ID"),
            levels: 1,
            as_name: "parentID".into(),
        };
        let r = ev.eval(&p).unwrap();
        for t in &r.tuples {
            let parent = t.get(4).as_id().unwrap();
            let child = t.get(0).as_id().unwrap();
            assert!(parent.is_parent_of(child));
        }
    }

    #[test]
    fn nest_all_packs_everything() {
        let (_doc, cat) = setup();
        let ev = Evaluator::new(&cat);
        let p = LogicalPlan::NestAll {
            input: Box::new(LogicalPlan::scan("author")),
            as_name: "A1".into(),
        };
        let r = ev.eval(&p).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.tuples[0].get(0).as_coll().unwrap().len(), 4);
    }

    #[test]
    fn rename_and_cast_schema() {
        let (_doc, cat) = setup();
        let ev = Evaluator::new(&cat);
        let p = LogicalPlan::scan("book").rename(&["a", "b", "c", "d"]);
        let r = ev.eval(&p).unwrap();
        assert_eq!(r.schema.to_string(), "(a, b, c, d)");
        // arity mismatch errors
        let bad = LogicalPlan::scan("book").rename(&["x"]);
        assert!(matches!(ev.eval(&bad), Err(EvalError::TypeError(_))));
        // deep cast replaces nested names when shapes agree
        let nested = LogicalPlan::scan("book").struct_nest_join(
            LogicalPlan::scan("author"),
            "ID",
            "ID",
            Axis::Child,
            false,
            "authors",
        );
        let target = {
            let mut s = Schema::atoms(&["i", "t", "v", "c"]);
            s.fields.push(Field::nested(
                "people",
                Schema::atoms(&["pi", "pt", "pv", "pc"]),
            ));
            s
        };
        let cast = LogicalPlan::CastSchema {
            input: Box::new(nested.clone()),
            schema: target.clone(),
        };
        let r = ev.eval(&cast).unwrap();
        assert_eq!(r.schema, target);
        // shape mismatch errors
        let bad = LogicalPlan::CastSchema {
            input: Box::new(nested),
            schema: Schema::atoms(&["only", "four", "flat", "cols", "x"]),
        };
        assert!(ev.eval(&bad).is_err());
    }

    #[test]
    fn fetch_and_navigate_modes() {
        let (doc, cat) = setup();
        let ev = Evaluator::with_document(&cat, &doc);
        // Fetch the value/content/tag of books from their IDs
        let p = LogicalPlan::Fetch {
            input: Box::new(LogicalPlan::scan("book").project(&["ID"])),
            id_attr: Path::new("ID"),
            what: crate::plan::FetchWhat::Tag,
            as_name: "tag".into(),
        };
        let r = ev.eval(&p).unwrap();
        assert_eq!(r.tuples[0].get(1).as_str(), Some("book"));
        // Navigate Exists keeps only books with authors, adds no columns
        let p = LogicalPlan::Navigate {
            input: Box::new(LogicalPlan::scan("book")),
            from_attr: Path::new("ID"),
            axis: Axis::Child,
            label: "author".into(),
            as_prefix: "a".into(),
            mode: NavMode::Exists,
        };
        let r = ev.eval(&p).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.schema.arity(), 4);
        // Navigate Outer null-pads (books → @year on the second book)
        let p = LogicalPlan::Navigate {
            input: Box::new(LogicalPlan::scan("book")),
            from_attr: Path::new("ID"),
            axis: Axis::Child,
            label: "@year".into(),
            as_prefix: "y".into(),
            mode: NavMode::Outer,
        };
        let r = ev.eval(&p).unwrap();
        assert_eq!(r.len(), 2);
        assert!(r.tuples[1].get(4).is_null());
    }

    #[test]
    fn twig_join_matches_cascade_exactly() {
        let (_doc, cat) = setup();
        // library ⋈≺≺ book ⋈≺ author ⋈≺ title as one twig
        let cascade = LogicalPlan::scan("library")
            .rename(&["l_id", "l_t", "l_v", "l_c"])
            .struct_join(
                LogicalPlan::scan("book").rename(&["b_id", "b_t", "b_v", "b_c"]),
                "l_id",
                "b_id",
                Axis::Descendant,
                JoinKind::Inner,
            )
            .struct_join(
                LogicalPlan::scan("author").rename(&["a_id", "a_t", "a_v", "a_c"]),
                "b_id",
                "a_id",
                Axis::Child,
                JoinKind::Inner,
            )
            .struct_join(
                LogicalPlan::scan("title").rename(&["t_id", "t_t", "t_v", "t_c"]),
                "b_id",
                "t_id",
                Axis::Child,
                JoinKind::Inner,
            );
        let fused = crate::twig::fuse_struct_joins(&cascade);
        assert!(matches!(fused, LogicalPlan::TwigJoin { .. }));
        let mut ev = Evaluator::new(&cat);
        let via_twig = ev.eval(&fused).unwrap();
        let via_cascade = ev.eval(&cascade).unwrap();
        assert_eq!(via_twig, via_cascade, "tuples and order must agree");
        assert_eq!(via_twig.len(), 3); // 2 authors + 1 author, each with a title
                                       // the toggle routes through the cascade and still agrees
        ev.config.use_twigstack = false;
        assert_eq!(ev.eval(&fused).unwrap(), via_cascade);
    }

    #[test]
    fn profiled_eval_matches_plain_and_mirrors_plan_shape() {
        let (_doc, cat) = setup();
        let plan = LogicalPlan::scan("book")
            .rename(&["b_id", "b_t", "b_v", "b_c"])
            .struct_join(
                LogicalPlan::scan("author").rename(&["a_id", "a_t", "a_v", "a_c"]),
                "b_id",
                "a_id",
                Axis::Child,
                JoinKind::Inner,
            )
            .project(&["a_v"]);
        let ev = Evaluator::new(&cat);
        let plain = ev.eval(&plan).unwrap();
        let (profiled, prof) = ev.eval_profiled(&plan).unwrap();
        assert_eq!(
            profiled, plain,
            "profiled execution must not change results"
        );
        // tree mirrors the plan: project → join → {rename → scan} × 2
        assert_eq!(prof.node_count(), plan.size());
        assert_eq!(prof.out_rows, plain.len() as u64);
        assert!(prof.op.starts_with("Project"), "{}", prof.op);
        let join = &prof.children[0];
        assert!(join.op.starts_with("StructJoin"), "{}", join.op);
        assert_eq!(join.children.len(), 2);
        assert!(join.metrics.comparisons > 0, "{:?}", join.metrics);
        // time aggregates: parent includes children
        assert!(prof.time_ns >= join.time_ns);
        // profiling off by default: the evaluator carries no metrics
        assert!(ev.metrics.is_none());
    }

    #[test]
    fn profiled_twig_counts_fallbacks_when_toggled_off() {
        let (_doc, cat) = setup();
        let twig = LogicalPlan::scan("book")
            .rename(&["b_id", "b_t", "b_v", "b_c"])
            .twig_join(vec![TwigStep::new(
                LogicalPlan::scan("author").rename(&["a_id", "a_t", "a_v", "a_c"]),
                "b_id",
                "a_id",
                Axis::Child,
            )]);
        let mut ev = Evaluator::new(&cat);
        let (_, prof) = ev.eval_profiled(&twig).unwrap();
        assert_eq!(prof.metrics.twig_fallbacks, 0);
        ev.config.use_twigstack = false;
        let (rel, prof_off) = ev.eval_profiled(&twig).unwrap();
        assert_eq!(prof_off.metrics.twig_fallbacks, 1, "{:?}", prof_off.metrics);
        assert_eq!(rel.len() as u64, prof_off.out_rows);
    }

    #[test]
    fn twig_join_falls_back_on_nested_attrs() {
        let (_doc, cat) = setup();
        let ev = Evaluator::new(&cat);
        // left attribute inside a nested collection: the holistic path
        // cannot run, the arm must transparently take the cascade route
        let nested = LogicalPlan::scan("library").struct_nest_join(
            LogicalPlan::scan("book"),
            "ID",
            "ID",
            Axis::Child,
            false,
            "books",
        );
        let twig = nested.clone().twig_join(vec![TwigStep::new(
            LogicalPlan::scan("author"),
            "books.ID",
            "ID",
            Axis::Child,
        )]);
        let direct = nested.struct_join(
            LogicalPlan::scan("author"),
            "books.ID",
            "ID",
            Axis::Child,
            JoinKind::Inner,
        );
        assert_eq!(ev.eval(&twig).unwrap(), ev.eval(&direct).unwrap());
    }

    #[test]
    fn twig_join_unknown_attr_errors() {
        let (_doc, cat) = setup();
        let ev = Evaluator::new(&cat);
        let twig = LogicalPlan::scan("book").twig_join(vec![TwigStep::new(
            LogicalPlan::scan("author"),
            "Nope",
            "ID",
            Axis::Child,
        )]);
        assert!(matches!(
            ev.eval(&twig),
            Err(EvalError::UnknownAttribute(_))
        ));
    }

    #[test]
    fn xml_template_operator() {
        use crate::xmlgen::Template;
        let (_doc, cat) = setup();
        let ev = Evaluator::new(&cat);
        let p = LogicalPlan::XmlTemplate {
            input: Box::new(LogicalPlan::scan("title").project(&["Val"])),
            templ: Template::elem("t", vec![Template::attr("Val")]),
        };
        let r = ev.eval(&p).unwrap();
        assert_eq!(r.len(), 3);
        assert_eq!(r.tuples[0].get(0).as_str(), Some("<t>Data on the Web</t>"));
    }
}
