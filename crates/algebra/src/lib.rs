//! # algebra — a nested relational algebra for XML processing
//!
//! Implements the logical algebra of §1.2.2 of the paper and the execution
//! engine of §1.2.3. The data model is nested relational: tuples whose
//! attributes are atomic values or collections (set / list / bag) of
//! homogeneous tuples, with tuple and collection constructors alternating.
//!
//! Operators: `Scan`, selections `σ`, projections `π`/`π°`, product `×`,
//! union `∪`, difference `\`, value joins (inner / semi / left-outer),
//! *structural* joins `⋈≺` and `⋈≺≺` with semijoin, outerjoin, **nest**
//! join and nest-outerjoin variants (Definitions 1.2.1–1.2.2), group-by,
//! unnest, the `map` meta-operator extending unary and binary operators to
//! nested attributes, and the `xml` tagging operator building serialized XML
//! from nested tuples.
//!
//! The physical layer implements the `StackTreeDesc` / `StackTreeAnc`
//! structural-join algorithms over ID-sorted inputs, a holistic
//! `TwigStack`-style twig join evaluating whole tree patterns in one
//! multi-way merge, a naive nested-loop fallback kept for the ablation
//! benches, and order descriptors tracking which attribute the output of
//! each operator is sorted on.

pub mod cursor;
pub mod eval;
pub mod order;
pub mod plan;
pub mod simd;
pub mod skip;
pub mod stacktree;
pub mod twig;
pub mod value;
pub mod xmlgen;

pub use cursor::{
    build_cursor, is_pipeline_breaker, pipeline_breakers, ArmSwitchHint, Cursor, CursorConfig,
    OpCells, OpStats, Residency, StreamExec, TupleBatch,
};
pub use eval::{Catalog, EvalConfig, EvalError, Evaluator, Relation};
pub use obs::{ExecMetrics, Meter, NoMeter, OpProfile};
pub use order::OrderSpec;
pub use plan::{
    Axis, CmpOp, FetchWhat, JoinKind, LogicalPlan, NavMode, Operand, Path, Predicate, TwigStep,
};
pub use simd::{
    count_leading_lt, count_leading_lt2, find_first_ge, find_first_gt, IdColumns, LANE,
};
pub use skip::{Seek, SidLike, SkipIndex, DEFAULT_BLOCK};
pub use stacktree::{
    nested_loop_pairs, stack_tree_pairs, stack_tree_pairs_columnar,
    stack_tree_pairs_columnar_metered, stack_tree_pairs_indexed, stack_tree_pairs_indexed_metered,
    stack_tree_pairs_metered,
};
pub use twig::{
    fuse_struct_joins, twig_join, twig_join_columnar, twig_join_columnar_metered,
    twig_join_indexed, twig_join_indexed_metered, twig_join_metered, twig_to_cascade, TwigNode,
    TwigPattern,
};
pub use value::{CollKind, Collection, Field, FieldKind, Schema, Tuple, Value};
pub use xmlgen::Template;
