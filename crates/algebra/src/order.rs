//! Order descriptors (§1.2.3).
//!
//! Each physical operator output carries an [`OrderSpec`] naming the
//! attribute path(s) the tuple stream is sorted on — e.g. `↓A3↑` or the
//! nested `↓A2.A21↑` of the paper. The evaluator uses the descriptor to
//! decide whether a structural-join input may be piped directly into
//! `StackTree` or must first pass through `Sort_φ`.

use std::cmp::Ordering;

use crate::plan::Path;
use crate::value::{Tuple, Value};

/// An order descriptor: the dotted attribute paths the stream is sorted on
/// (major first). Empty = no known order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OrderSpec {
    pub cols: Vec<Path>,
}

impl OrderSpec {
    pub fn none() -> OrderSpec {
        OrderSpec { cols: Vec::new() }
    }

    pub fn by(col: impl Into<String>) -> OrderSpec {
        OrderSpec {
            cols: vec![Path::new(col)],
        }
    }

    /// Does this descriptor guarantee sortedness on `col` (i.e. `col` is the
    /// major sort key)?
    pub fn satisfies(&self, col: &Path) -> bool {
        self.cols.first() == Some(col)
    }
}

impl std::fmt::Display for OrderSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.cols.is_empty() {
            return write!(f, "∅");
        }
        write!(f, "↓")?;
        for (i, c) in self.cols.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "↑")
    }
}

/// Total order on values used by `Sort_φ`: nulls first, then by natural
/// comparison; IDs order by pre rank (document order).
pub fn value_cmp(a: &Value, b: &Value) -> Ordering {
    use Value::*;
    match (a, b) {
        (Null, Null) => Ordering::Equal,
        (Null, _) => Ordering::Less,
        (_, Null) => Ordering::Greater,
        (Id(x), Id(y)) => x.pre.cmp(&y.pre),
        (Int(x), Int(y)) => x.cmp(y),
        (Str(x), Str(y)) => x.as_ref().cmp(y.as_ref()),
        (Int(_), Str(_)) => Ordering::Less,
        (Str(_), Int(_)) => Ordering::Greater,
        (Id(_), _) => Ordering::Less,
        (_, Id(_)) => Ordering::Greater,
        (Coll(x), Coll(y)) => {
            for (tx, ty) in x.tuples.iter().zip(&y.tuples) {
                let c = tuple_cmp_all(tx, ty);
                if c != Ordering::Equal {
                    return c;
                }
            }
            x.tuples.len().cmp(&y.tuples.len())
        }
        (Coll(_), _) => Ordering::Greater,
        (_, Coll(_)) => Ordering::Less,
    }
}

/// Lexicographic comparison of whole tuples (used by π°, `\` and sorting).
pub fn tuple_cmp_all(a: &Tuple, b: &Tuple) -> Ordering {
    for (x, y) in a.0.iter().zip(&b.0) {
        let c = value_cmp(x, y);
        if c != Ordering::Equal {
            return c;
        }
    }
    a.0.len().cmp(&b.0.len())
}

/// Is the tuple slice sorted on the values extracted by `key`?
pub fn is_sorted_by<F: Fn(&Tuple) -> Value>(tuples: &[Tuple], key: F) -> bool {
    tuples
        .windows(2)
        .all(|w| value_cmp(&key(&w[0]), &key(&w[1])) != Ordering::Greater)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmltree::StructuralId;

    #[test]
    fn value_order_nulls_first() {
        assert_eq!(value_cmp(&Value::Null, &Value::Int(0)), Ordering::Less);
        assert_eq!(value_cmp(&Value::Int(1), &Value::Int(1)), Ordering::Equal);
        assert_eq!(
            value_cmp(
                &Value::Id(StructuralId::new(3, 0, 1)),
                &Value::Id(StructuralId::new(5, 9, 2))
            ),
            Ordering::Less
        );
    }

    #[test]
    fn order_spec_satisfaction() {
        let o = OrderSpec::by("ID");
        assert!(o.satisfies(&Path::new("ID")));
        assert!(!o.satisfies(&Path::new("Val")));
        assert!(!OrderSpec::none().satisfies(&Path::new("ID")));
        assert_eq!(o.to_string(), "↓ID↑");
    }

    #[test]
    fn sortedness_check() {
        let ts: Vec<Tuple> = [1, 2, 2, 5]
            .iter()
            .map(|&i| Tuple::new(vec![Value::Int(i)]))
            .collect();
        assert!(is_sorted_by(&ts, |t| t.get(0).clone()));
        let ts2: Vec<Tuple> = [3, 1]
            .iter()
            .map(|&i| Tuple::new(vec![Value::Int(i)]))
            .collect();
        assert!(!is_sorted_by(&ts2, |t| t.get(0).clone()));
    }
}
