//! XB-tree-style hierarchical skip index over a pre-sorted
//! [`StructuralId`] stream.
//!
//! A [`SkipIndex`] summarizes consecutive blocks of a stream by fence
//! pairs `[min_pre, max_post]` and stacks fence levels until the top
//! level fits in one block, exactly like the XB-tree the TwigStack line
//! of work pairs with holistic joins. Because a stream sorted by `pre`
//! keeps every subtree contiguous, two seek primitives cover all the
//! skipping the join kernels need:
//!
//! * [`SkipIndex::seek_descendant_of`] — the first position whose
//!   element can still be a descendant of an anchor (`pre > anchor.pre`);
//! * [`SkipIndex::seek_past`] — the first position past the anchor's
//!   whole subtree (`pre > anchor.pre` and `post > anchor.post`).
//!
//! Both descend the fence hierarchy instead of scanning elements, so a
//! seek over `n` elements costs `O(block · log_block n)` fence tests and
//! reports how many fence blocks it stepped over whole — the
//! `blocks_pruned` figure of the execution metrics. The kernels add the
//! jumped-over element count as `elements_skipped`.

use xmltree::StructuralId;

/// Items a [`SkipIndex`] can be built over: anything carrying a
/// [`StructuralId`]. Lets one index type serve both the storage layer's
/// plain ID columns and the kernels' `(id, payload)` streams.
pub trait SidLike {
    fn sid(&self) -> StructuralId;
}

impl SidLike for StructuralId {
    #[inline]
    fn sid(&self) -> StructuralId {
        *self
    }
}

impl SidLike for (StructuralId, usize) {
    #[inline]
    fn sid(&self) -> StructuralId {
        self.0
    }
}

/// One fence: bounds of a block of consecutive stream elements (or of
/// consecutive lower-level fences). `min_pre` is the block's first pre
/// rank (streams are pre-sorted); `max_post` bounds every post inside.
#[derive(Debug, Clone, Copy)]
struct Fence {
    min_pre: u32,
    max_post: u32,
}

/// Outcome of a seek: the target position plus how many fence blocks
/// the descent stepped over without opening them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Seek {
    /// First qualifying position (`== stream length` when none).
    pub pos: usize,
    /// Fence blocks (any level) skipped whole during the descent.
    pub blocks_pruned: u64,
}

/// The default fence block size (elements per leaf fence, fences per
/// upper-level fence).
pub const DEFAULT_BLOCK: usize = 64;

/// Hierarchical `[min_pre, max_post]` fence index over one pre-sorted
/// stream. The index stores no elements — seeks take the stream slice
/// they index, and callers must pass the same (unchanged) stream the
/// index was built over.
#[derive(Debug, Clone, Default)]
pub struct SkipIndex {
    block: usize,
    len: usize,
    /// `levels[0]` fences element blocks; `levels[k]` fences blocks of
    /// `levels[k-1]`. The last level has at most `block` fences.
    levels: Vec<Vec<Fence>>,
}

impl SkipIndex {
    /// Build with the default block size.
    pub fn build<T: SidLike>(stream: &[T]) -> SkipIndex {
        SkipIndex::with_block(stream, DEFAULT_BLOCK)
    }

    /// Build with an explicit block size (clamped to ≥ 1); exposed so
    /// tests can exercise degenerate and non-power-of-two layouts.
    pub fn with_block<T: SidLike>(stream: &[T], block: usize) -> SkipIndex {
        let block = block.max(1);
        debug_assert!(stream.windows(2).all(|w| w[0].sid().pre <= w[1].sid().pre));
        let mut levels: Vec<Vec<Fence>> = Vec::new();
        let mut level: Vec<Fence> = stream
            .chunks(block)
            .map(|c| Fence {
                min_pre: c[0].sid().pre,
                max_post: c.iter().map(|e| e.sid().post).max().unwrap(),
            })
            .collect();
        while level.len() > 1 {
            let next: Vec<Fence> = level
                .chunks(block)
                .map(|c| Fence {
                    min_pre: c[0].min_pre,
                    max_post: c.iter().map(|f| f.max_post).max().unwrap(),
                })
                .collect();
            if next.len() >= level.len() {
                break; // block == 1: chunking cannot shrink a level
            }
            let done = next.len() <= block;
            levels.push(level);
            level = next;
            if done {
                break;
            }
        }
        levels.push(level);
        SkipIndex {
            block,
            len: stream.len(),
            levels,
        }
    }

    /// Elements covered by the index.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The configured fence block size.
    pub fn block(&self) -> usize {
        self.block
    }

    /// Fence levels stacked over the stream (0 for an empty stream).
    pub fn depth(&self) -> usize {
        if self.len == 0 {
            0
        } else {
            self.levels.len()
        }
    }

    /// First position at or after `from` whose element can still be a
    /// descendant of `anchor` — i.e. the first with `pre > anchor.pre`.
    /// Elements before it precede the anchor in document order and can
    /// never fall inside the anchor's (or any later candidate's)
    /// subtree.
    pub fn seek_descendant_of<T: SidLike>(
        &self,
        stream: &[T],
        from: usize,
        anchor: StructuralId,
    ) -> Seek {
        // a block's largest pre is at most the next fence's `min_pre`
        // (streams are non-strictly pre-sorted — duplicate IDs from
        // multi-tuple join inputs may straddle a block boundary), so a
        // block can hold a `pre > anchor.pre` element only if that
        // inclusive bound exceeds `anchor.pre`
        self.seek(
            stream,
            from,
            |sid| sid.pre > anchor.pre,
            |_f, next_min_pre| next_min_pre > anchor.pre,
        )
    }

    /// First position at or after `from` past the anchor's whole
    /// subtree: `pre > anchor.pre` **and** `post > anchor.post`. In a
    /// pre-sorted stream the anchor's descendants form one contiguous
    /// run, so this is where a kernel lands after consuming (or
    /// discarding) an entire subtree.
    pub fn seek_past<T: SidLike>(&self, stream: &[T], from: usize, anchor: StructuralId) -> Seek {
        self.seek(
            stream,
            from,
            |sid| sid.pre > anchor.pre && sid.post > anchor.post,
            |f, next_min_pre| next_min_pre > anchor.pre && f.max_post > anchor.post,
        )
    }

    /// Generic fence descent for a predicate that is monotone over the
    /// stream suffix starting at `from`: `elem_hit` tests an element;
    /// `block_may_hit` sees a fence plus the *next* same-level fence's
    /// `min_pre` (`u32::MAX` at the tail) — an *inclusive* upper bound on
    /// every pre rank inside the block (order is non-strict, so a
    /// duplicated pre may equal the next fence's minimum) — and must
    /// return `false` only for blocks none of whose elements can satisfy
    /// `elem_hit`.
    /// Returns the first hit at or after `from`.
    fn seek<T, E, B>(&self, stream: &[T], from: usize, elem_hit: E, block_may_hit: B) -> Seek
    where
        T: SidLike,
        E: Fn(StructuralId) -> bool,
        B: Fn(&Fence, u32) -> bool,
    {
        debug_assert_eq!(stream.len(), self.len, "index/stream mismatch");
        let mut pruned = 0u64;
        let mut from = from;
        // outer loop re-enters only when a fence over-approximated (its
        // block qualified but held no hit); each pass restarts at a
        // strictly later block boundary, so it terminates
        loop {
            if from >= self.len {
                return Seek {
                    pos: self.len,
                    blocks_pruned: pruned,
                };
            }
            // finish the partially-consumed leaf block by hand — fences
            // only speak for whole blocks
            let leaf = from / self.block;
            let leaf_end = ((leaf + 1) * self.block).min(self.len);
            if let Some(off) = stream[from..leaf_end]
                .iter()
                .position(|e| elem_hit(e.sid()))
            {
                return Seek {
                    pos: from + off,
                    blocks_pruned: pruned,
                };
            }
            // climb: find the first whole block at or after `leaf + 1`
            // that may contain a hit, pruning fences level by level
            let mut idx = leaf + 1; // fence index at the current level
            let mut lvl = 0usize;
            loop {
                if lvl >= self.levels.len() {
                    // ran off the top: nothing qualifies
                    return Seek {
                        pos: self.len,
                        blocks_pruned: pruned,
                    };
                }
                let fences = &self.levels[lvl];
                if idx >= fences.len() {
                    // exhausted this level's tail; resume above, right
                    // of the parent fence we came from
                    idx = idx.div_ceil(self.block);
                    lvl += 1;
                    continue;
                }
                let next_min_pre = fences.get(idx + 1).map_or(u32::MAX, |f| f.min_pre);
                if block_may_hit(&fences[idx], next_min_pre) {
                    if lvl == 0 {
                        break; // scan this leaf block below
                    }
                    // descend into the first child fence of this block
                    idx *= self.block;
                    lvl -= 1;
                    continue;
                }
                pruned += 1;
                if (idx + 1).is_multiple_of(self.block) && lvl + 1 < self.levels.len() {
                    // last fence under its parent: pop up a level so
                    // whole upper blocks can be pruned in one test —
                    // but only when a parent level exists (the block=1
                    // layout keeps a single level of any length)
                    idx = (idx + 1) / self.block;
                    lvl += 1;
                } else {
                    idx += 1;
                }
            }
            // scan the qualifying leaf block for the exact position
            let start = idx * self.block;
            let end = ((idx + 1) * self.block).min(self.len);
            if let Some(off) = stream[start..end].iter().position(|e| elem_hit(e.sid())) {
                return Seek {
                    pos: start + off,
                    blocks_pruned: pruned,
                };
            }
            // the fence bounds were loose; the hit, if any, starts at
            // the next block boundary
            from = end;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmltree::{generate, NodeKind};

    fn ids(doc: &xmltree::Document, label: &str) -> Vec<StructuralId> {
        doc.nodes_with_label(label, NodeKind::Element)
            .map(|n| doc.structural_id(n))
            .collect()
    }

    /// Linear-scan oracles for the two seek primitives.
    fn linear_descendant(ids: &[StructuralId], from: usize, anchor: StructuralId) -> usize {
        (from..ids.len())
            .find(|&i| ids[i].pre > anchor.pre)
            .unwrap_or(ids.len())
    }

    fn linear_past(ids: &[StructuralId], from: usize, anchor: StructuralId) -> usize {
        (from..ids.len())
            .find(|&i| ids[i].pre > anchor.pre && ids[i].post > anchor.post)
            .unwrap_or(ids.len())
    }

    #[test]
    fn seeks_match_linear_scan_across_block_sizes() {
        let doc = generate::xmark(3, 11);
        let items = ids(&doc, "item");
        let keywords = ids(&doc, "keyword");
        assert!(keywords.len() > 70, "need a few blocks");
        for block in [1, 2, 64, 7, 100, keywords.len() + 5] {
            let ix = SkipIndex::with_block(&keywords, block);
            assert_eq!(ix.len(), keywords.len());
            for anchor in items.iter().step_by(3) {
                for from in [0, 1, keywords.len() / 2, keywords.len() - 1] {
                    let d = ix.seek_descendant_of(&keywords, from, *anchor);
                    assert_eq!(
                        d.pos,
                        linear_descendant(&keywords, from, *anchor),
                        "descendant block={block} from={from}"
                    );
                    let p = ix.seek_past(&keywords, from, *anchor);
                    assert_eq!(
                        p.pos,
                        linear_past(&keywords, from, *anchor),
                        "past block={block} from={from}"
                    );
                }
            }
        }
    }

    #[test]
    fn seeks_prune_blocks_on_long_streams() {
        let doc = generate::xmark(6, 13);
        let keywords = ids(&doc, "keyword");
        let sites = ids(&doc, "site");
        let ix = SkipIndex::with_block(&keywords, 8);
        assert!(ix.depth() >= 2, "hierarchy must stack: {}", ix.depth());
        // seeking past the root's whole subtree jumps the entire stream
        let s = ix.seek_past(&keywords, 0, sites[0]);
        assert_eq!(s.pos, keywords.len());
        assert!(s.blocks_pruned > 0, "{s:?}");
        // thanks to the hierarchy, far fewer fence tests than leaf blocks
        assert!(
            s.blocks_pruned < keywords.len().div_ceil(8) as u64,
            "pruned {} of {} leaf blocks — hierarchy unused",
            s.blocks_pruned,
            keywords.len().div_ceil(8)
        );
    }

    #[test]
    fn duplicate_straddling_block_boundary_not_pruned() {
        // Join inputs may carry the same node ID in many tuples (e.g. a
        // view column), so streams are only *non-strictly* pre-sorted.
        // Regression: with block = 2 the middle block ends in the first
        // copy of pre = 3 and the next fence's min_pre is the second
        // copy, so for an anchor with pre = 2 the block satisfies
        // `max_pre == next_min_pre == anchor.pre + 1` — the old strict
        // bound pruned it and the seek overshot the first hit.
        let ids = vec![
            StructuralId::new(0, 10, 1),
            StructuralId::new(1, 1, 2),
            StructuralId::new(2, 4, 2),
            StructuralId::new(3, 3, 3),
            StructuralId::new(3, 3, 3), // duplicate straddles the boundary
            StructuralId::new(9, 9, 2),
        ];
        let anchor = StructuralId::new(2, 4, 2);
        let ix = SkipIndex::with_block(&ids, 2);
        let d = ix.seek_descendant_of(&ids, 0, anchor);
        assert_eq!(d.pos, linear_descendant(&ids, 0, anchor), "overshot");
        assert_eq!(d.pos, 3);
        assert_eq!(
            ix.seek_past(&ids, 0, anchor).pos,
            linear_past(&ids, 0, anchor)
        );
    }

    #[test]
    fn seeks_match_linear_scan_on_duplicated_streams() {
        // streams with repeated IDs (each element duplicated 0–2 extra
        // times, consecutively, preserving the non-strict pre order)
        let doc = generate::xmark(3, 11);
        let mut keywords: Vec<StructuralId> = Vec::new();
        for (i, sid) in ids(&doc, "keyword").into_iter().enumerate() {
            for _ in 0..=(i % 3) {
                keywords.push(sid);
            }
        }
        assert!(keywords.windows(2).all(|w| w[0].pre <= w[1].pre));
        let items = ids(&doc, "item");
        for block in [1, 2, 3, 7, 64] {
            let ix = SkipIndex::with_block(&keywords, block);
            for anchor in items.iter().step_by(5) {
                for from in [0, 1, keywords.len() / 3, keywords.len() - 1] {
                    assert_eq!(
                        ix.seek_descendant_of(&keywords, from, *anchor).pos,
                        linear_descendant(&keywords, from, *anchor),
                        "descendant block={block} from={from}"
                    );
                    assert_eq!(
                        ix.seek_past(&keywords, from, *anchor).pos,
                        linear_past(&keywords, from, *anchor),
                        "past block={block} from={from}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_and_tiny_streams() {
        let empty: Vec<StructuralId> = Vec::new();
        let ix = SkipIndex::build(&empty);
        assert!(ix.is_empty());
        assert_eq!(ix.depth(), 0);
        let anchor = StructuralId::new(5, 5, 1);
        assert_eq!(ix.seek_descendant_of(&empty, 0, anchor).pos, 0);
        assert_eq!(ix.seek_past(&empty, 3, anchor).pos, 0);

        let one = vec![StructuralId::new(9, 9, 2)];
        let ix1 = SkipIndex::with_block(&one, 4);
        assert_eq!(ix1.seek_descendant_of(&one, 0, anchor).pos, 0);
        assert_eq!(
            ix1.seek_descendant_of(&one, 0, StructuralId::new(10, 20, 1))
                .pos,
            1
        );
    }

    #[test]
    fn works_over_payload_pairs() {
        let doc = generate::xmark(2, 7);
        let pairs: Vec<(StructuralId, usize)> = ids(&doc, "item")
            .into_iter()
            .enumerate()
            .map(|(i, s)| (s, i))
            .collect();
        let plain: Vec<StructuralId> = pairs.iter().map(|p| p.0).collect();
        let ix = SkipIndex::with_block(&pairs, 3);
        let anchor = plain[plain.len() / 2];
        assert_eq!(
            ix.seek_descendant_of(&pairs, 0, anchor).pos,
            linear_descendant(&plain, 0, anchor)
        );
        assert_eq!(
            ix.seek_past(&pairs, 0, anchor).pos,
            linear_past(&plain, 0, anchor)
        );
    }
}
