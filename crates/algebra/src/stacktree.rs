//! Physical structural-join algorithms (§1.2.3).
//!
//! [`stack_tree_pairs`] implements the stack-based merge of Al-Khalifa et
//! al.'s `StackTree` family: given an ancestor-candidate sequence and a
//! descendant-candidate sequence, both sorted by the pre rank of their ID
//! attribute, it produces all `(ancestor_index, descendant_index)` match
//! pairs in a single merge pass, maintaining a stack of ancestors whose
//! pre/post interval is still open.
//!
//! `StackTreeDesc` corresponds to emitting the pairs sorted by descendant
//! ID (which is how this function naturally emits them); `StackTreeAnc`
//! output order is obtained by a stable re-sort on the ancestor index —
//! the evaluator picks whichever order downstream operators need.
//! [`nested_loop_pairs`] is the naive O(|L|·|R|) fallback kept for the
//! physical-operator ablation bench.

use obs::{Meter, NoMeter};
use xmltree::StructuralId;

use crate::plan::Axis;
use crate::simd::IdColumns;
use crate::skip::SkipIndex;

/// Does `anc` match `desc` on the given axis?
#[inline]
pub(crate) fn axis_match(anc: StructuralId, desc: StructuralId, axis: Axis) -> bool {
    match axis {
        Axis::Child => anc.is_parent_of(desc),
        Axis::Descendant => anc.is_ancestor_of(desc),
    }
}

/// Pop every stack entry whose pre/post interval closed before `post`:
/// the stack holds candidates with `top.pre` below the incoming node's
/// pre rank, so `top` contains the incoming node iff `top.post > post`
/// (pre and post are separate counters, so the test must compare post
/// against post, not post against pre).
#[inline]
fn pop_closed(stack: &mut Vec<(StructuralId, usize)>, post: u32) {
    while let Some(&(top, _)) = stack.last() {
        if top.post < post {
            stack.pop();
        } else {
            break;
        }
    }
}

/// Compute all structural match pairs between `anc[i].0` and `desc[j].0`
/// using the StackTree merge. Both slices **must** be sorted by `pre` rank
/// of the carried [`StructuralId`]; the second component of each element is
/// an opaque payload index returned in the pairs.
///
/// Output pairs are emitted in descendant order (StackTreeDesc order) —
/// i.e. sorted by `desc` position, with the matching ancestors innermost
/// (deepest) first for each descendant.
pub fn stack_tree_pairs(
    anc: &[(StructuralId, usize)],
    desc: &[(StructuralId, usize)],
    axis: Axis,
) -> Vec<(usize, usize)> {
    stack_tree_pairs_metered(anc, desc, axis, &mut NoMeter)
}

/// [`stack_tree_pairs`] with execution counters: axis tests on the
/// stack-scan loop count as comparisons, and the open-ancestor stack's
/// high-water mark is recorded. With [`NoMeter`] this monomorphizes to
/// the unmetered kernel.
pub fn stack_tree_pairs_metered<M: Meter>(
    anc: &[(StructuralId, usize)],
    desc: &[(StructuralId, usize)],
    axis: Axis,
    meter: &mut M,
) -> Vec<(usize, usize)> {
    stack_tree_pairs_indexed_metered(anc, desc, axis, None, meter)
}

/// [`stack_tree_pairs`] with an optional skip index over the descendant
/// stream. Whenever the ancestor stack runs empty, every descendant up
/// to the next ancestor candidate's pre rank matches nothing, so the
/// merge seeks the descendant cursor past it instead of stepping — and
/// drops the whole descendant tail once ancestors are exhausted. With
/// `None` this is exactly the linear merge.
pub fn stack_tree_pairs_indexed(
    anc: &[(StructuralId, usize)],
    desc: &[(StructuralId, usize)],
    axis: Axis,
    desc_index: Option<&SkipIndex>,
) -> Vec<(usize, usize)> {
    stack_tree_pairs_indexed_metered(anc, desc, axis, desc_index, &mut NoMeter)
}

/// [`stack_tree_pairs_indexed`] with execution counters; seeks report
/// jumped-over elements and pruned fence blocks.
pub fn stack_tree_pairs_indexed_metered<M: Meter>(
    anc: &[(StructuralId, usize)],
    desc: &[(StructuralId, usize)],
    axis: Axis,
    desc_index: Option<&SkipIndex>,
    meter: &mut M,
) -> Vec<(usize, usize)> {
    debug_assert!(anc.windows(2).all(|w| w[0].0.pre <= w[1].0.pre));
    debug_assert!(desc.windows(2).all(|w| w[0].0.pre <= w[1].0.pre));
    // Most workloads pair each descendant with O(1) ancestors, so the
    // smaller input is a good first-allocation guess for the output.
    let mut out = Vec::with_capacity(anc.len().min(desc.len()));
    let mut stack: Vec<(StructuralId, usize)> = Vec::with_capacity(16);
    let mut ai = 0;
    let mut di = 0;
    while di < desc.len() {
        let (d, dpay) = desc[di];
        // a descendant that arrives with the stack empty can only match
        // ancestors still ahead, all with larger pre: seek straight to
        // the next ancestor's pre rank (or drop the tail if none remain)
        if stack.is_empty() && !(ai < anc.len() && anc[ai].0.pre <= d.pre) {
            // skipped counts exclude the element being inspected (it was
            // read to decide the seek) — the same convention as the twig
            // kernel, so `elements_skipped` is comparable across kernels
            if let Some(ix) = desc_index {
                if ai >= anc.len() {
                    meter.skipped((desc.len() - di - 1) as u64);
                    break;
                }
                // anc[ai].0.pre > d.pre here: descendants up to that pre
                // rank (inclusive — a node is not its own ancestor)
                // cannot match anc[ai] or anything after it
                let s = ix.seek_descendant_of(desc, di, anc[ai].0);
                meter.blocks_pruned(s.blocks_pruned);
                meter.skipped((s.pos - di - 1) as u64);
                di = s.pos;
                continue;
            }
        }
        // push all ancestors that start before this descendant, closing
        // the stack entries that cannot contain them
        while ai < anc.len() && anc[ai].0.pre <= d.pre {
            let (a, apay) = anc[ai];
            pop_closed(&mut stack, a.post);
            stack.push((a, apay));
            meter.stack_depth(stack.len());
            ai += 1;
        }
        // close stack entries that are not ancestors of `d`
        pop_closed(&mut stack, d.post);
        // the stack is now exactly the ancestor chain of `d` among the
        // candidates; emit matches (all of them for `//`, the depth-adjacent
        // ones for `/`)
        meter.comparisons(stack.len() as u64);
        for &(a, apay) in stack.iter().rev() {
            if axis_match(a, d, axis) {
                out.push((apay, dpay));
            }
        }
        di += 1;
    }
    out
}

/// [`stack_tree_pairs`] over packed [`IdColumns`] streams — the
/// vectorized cascade kernel behind `columnar_kernels`. Emits exactly
/// the pairs (and order) of the scalar merge; the advance machinery
/// exploits the columnar layout twice:
///
/// * **bulk emit** — when exactly one ancestor is open and the next
///   ancestor candidate starts later, every following descendant whose
///   pre rank stays below that next candidate and whose post rank stays
///   inside the open ancestor pairs with it and only it: no push, no
///   pop, no per-element stack scan. [`IdColumns::leading_run`] counts
///   the run a block at a time; the `/` axis adds a depth-column check
///   per element but still no stack traffic.
/// * **bulk skip** — an empty stack with the next ancestor ahead means
///   a prunable descendant run; [`IdColumns::seek_pre_gt`] gallops past
///   it (the sorted pre column is seekable by construction, so the
///   columnar kernel always skips, index or not).
pub fn stack_tree_pairs_columnar(
    anc: &IdColumns,
    desc: &IdColumns,
    axis: Axis,
) -> Vec<(usize, usize)> {
    stack_tree_pairs_columnar_metered(anc, desc, axis, &mut NoMeter)
}

/// [`stack_tree_pairs_columnar`] with execution counters; the vector
/// kernels additionally report `batches_scanned` / `vector_compares`.
pub fn stack_tree_pairs_columnar_metered<M: Meter>(
    anc: &IdColumns,
    desc: &IdColumns,
    axis: Axis,
    meter: &mut M,
) -> Vec<(usize, usize)> {
    let mut out = Vec::with_capacity(anc.len().min(desc.len()));
    let mut stack: Vec<(StructuralId, usize)> = Vec::with_capacity(16);
    let mut ai = 0;
    let mut di = 0;
    while di < desc.len() {
        let dpre = desc.pre()[di];
        if stack.is_empty() && !(ai < anc.len() && anc.pre()[ai] <= dpre) {
            // same skipped-count convention as the scalar indexed merge:
            // the inspected element is excluded
            if ai >= anc.len() {
                meter.skipped((desc.len() - di - 1) as u64);
                break;
            }
            // anc.pre()[ai] > dpre: seek to the first possible
            // descendant of that candidate (first pre above it —
            // inclusive bound, a node is not its own ancestor)
            let s = desc.seek_pre_gt(di, anc.pre()[ai], meter);
            meter.skipped((s - di - 1) as u64);
            di = s;
            continue;
        }
        while ai < anc.len() && anc.pre()[ai] <= dpre {
            let a = anc.sid(ai);
            pop_closed(&mut stack, a.post);
            stack.push((a, anc.payload(ai)));
            meter.stack_depth(stack.len());
            ai += 1;
        }
        let d = desc.sid(di);
        pop_closed(&mut stack, d.post);
        if stack.len() == 1 && stack[0].0.pre < d.pre {
            // single open ancestor `a`, next candidate strictly ahead:
            // the whole run below both bounds pairs with `a` alone. The
            // run is non-empty — d itself qualifies (pre > a.pre by the
            // guard; post < a.post or pop_closed would have popped `a`;
            // pre < next candidate's pre since the push loop drained
            // every candidate at or below d.pre).
            let (a, apay) = stack[0];
            let next_pre = anc.pre().get(ai).copied().unwrap_or(u32::MAX);
            let run = desc.leading_run(di, next_pre, a.post, meter);
            debug_assert!(run > 0);
            match axis {
                Axis::Descendant => {
                    for i in di..di + run {
                        out.push((apay, desc.payload(i)));
                    }
                }
                Axis::Child => {
                    let want = a.depth + 1;
                    for i in di..di + run {
                        if desc.depth()[i] == want {
                            out.push((apay, desc.payload(i)));
                        }
                    }
                }
            }
            meter.comparisons(run as u64);
            di += run;
            continue;
        }
        meter.comparisons(stack.len() as u64);
        for &(a, apay) in stack.iter().rev() {
            if axis_match(a, d, axis) {
                out.push((apay, desc.payload(di)));
            }
        }
        di += 1;
    }
    out
}

/// Naive nested-loop structural join; quadratic, order-insensitive. Kept
/// as the baseline for the StackTree ablation (DESIGN.md §choices).
pub fn nested_loop_pairs(
    anc: &[(StructuralId, usize)],
    desc: &[(StructuralId, usize)],
    axis: Axis,
) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for &(d, dpay) in desc {
        for &(a, apay) in anc {
            if axis_match(a, d, axis) {
                out.push((apay, dpay));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmltree::generate;

    /// Collect `(sid, index)` pairs of all elements with a label, sorted by
    /// pre (document order gives that for free).
    fn ids(doc: &xmltree::Document, label: &str) -> Vec<(StructuralId, usize)> {
        doc.nodes_with_label(label, xmltree::NodeKind::Element)
            .enumerate()
            .map(|(i, n)| (doc.structural_id(n), i))
            .collect()
    }

    #[test]
    fn matches_nested_loop_on_xmark() {
        let doc = generate::xmark(4, 11);
        for (anc_l, desc_l) in [
            ("item", "keyword"),
            ("parlist", "listitem"),
            ("listitem", "parlist"),
            ("description", "bold"),
            ("site", "item"),
        ] {
            let anc = ids(&doc, anc_l);
            let desc = ids(&doc, desc_l);
            for axis in [Axis::Child, Axis::Descendant] {
                let mut a = stack_tree_pairs(&anc, &desc, axis);
                let mut b = nested_loop_pairs(&anc, &desc, axis);
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "{anc_l} {axis:?} {desc_l}");
            }
        }
    }

    #[test]
    fn recursive_ancestors_all_found() {
        // parlist can nest inside listitem inside parlist: a deep keyword
        // has several parlist ancestors, all of which must be paired.
        let doc = generate::xmark(3, 7);
        let anc = ids(&doc, "parlist");
        let desc = ids(&doc, "keyword");
        let pairs = stack_tree_pairs(&anc, &desc, Axis::Descendant);
        // at least one keyword has ≥ 2 parlist ancestors
        let mut per_desc = std::collections::HashMap::new();
        for (_, d) in &pairs {
            *per_desc.entry(*d).or_insert(0) += 1;
        }
        assert!(
            per_desc.values().any(|&c| c >= 2),
            "recursion not exercised"
        );
    }

    #[test]
    fn output_in_descendant_order() {
        let doc = generate::xmark(3, 5);
        let anc = ids(&doc, "item");
        let desc = ids(&doc, "keyword");
        let pairs = stack_tree_pairs(&anc, &desc, Axis::Descendant);
        assert!(pairs.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn metered_variant_counts_and_matches_unmetered() {
        let doc = generate::xmark(3, 7);
        let anc = ids(&doc, "parlist");
        let desc = ids(&doc, "keyword");
        let mut metrics = obs::ExecMetrics::default();
        let metered = stack_tree_pairs_metered(&anc, &desc, Axis::Descendant, &mut metrics);
        assert_eq!(metered, stack_tree_pairs(&anc, &desc, Axis::Descendant));
        // parlist recursion guarantees a stack deeper than one and at
        // least one comparison per emitted pair
        assert!(metrics.stack_high_water >= 2, "{metrics:?}");
        assert!(metrics.comparisons >= metered.len() as u64);
    }

    #[test]
    fn indexed_merge_matches_linear_and_skips() {
        let doc = generate::xmark(4, 11);
        for (anc_l, desc_l) in [
            ("bold", "keyword"),
            ("item", "keyword"),
            ("parlist", "parlist"),
            ("site", "item"),
        ] {
            let anc = ids(&doc, anc_l);
            let desc = ids(&doc, desc_l);
            for axis in [Axis::Child, Axis::Descendant] {
                let want = stack_tree_pairs(&anc, &desc, axis);
                for block in [1, 7, 64] {
                    let ix = SkipIndex::with_block(&desc, block);
                    assert_eq!(
                        stack_tree_pairs_indexed(&anc, &desc, axis, Some(&ix)),
                        want,
                        "{anc_l} {axis:?} {desc_l} block={block}"
                    );
                }
            }
        }
        // sparse ancestors (mails) over a dense descendant stream must
        // skip: the keywords under item descriptions between consecutive
        // mail subtrees are seeked over wholesale
        let anc = ids(&doc, "mail");
        let desc = ids(&doc, "keyword");
        let ix = SkipIndex::build(&desc);
        let mut metrics = obs::ExecMetrics::default();
        let got = stack_tree_pairs_indexed_metered(
            &anc,
            &desc,
            Axis::Descendant,
            Some(&ix),
            &mut metrics,
        );
        assert_eq!(got, stack_tree_pairs(&anc, &desc, Axis::Descendant));
        assert!(metrics.elements_skipped > 0, "{metrics:?}");
    }

    #[test]
    fn indexed_merge_handles_duplicate_descendant_ids() {
        // join inputs can repeat a node ID across tuples (a view column
        // joined on the same node), so the kernel's index must stay
        // exact on non-strictly sorted streams — including duplicates
        // straddling fence-block boundaries
        let doc = generate::xmark(3, 11);
        let anc = ids(&doc, "item");
        let mut desc: Vec<(StructuralId, usize)> = Vec::new();
        for (i, (sid, _)) in ids(&doc, "keyword").into_iter().enumerate() {
            for _ in 0..=(i % 3) {
                desc.push((sid, desc.len()));
            }
        }
        for axis in [Axis::Child, Axis::Descendant] {
            let mut want = nested_loop_pairs(&anc, &desc, axis);
            want.sort_unstable();
            for block in [1, 2, 7, 64] {
                let ix = SkipIndex::with_block(&desc, block);
                let mut got = stack_tree_pairs_indexed(&anc, &desc, axis, Some(&ix));
                got.sort_unstable();
                assert_eq!(got, want, "{axis:?} block={block}");
            }
        }
    }

    #[test]
    fn columnar_merge_matches_scalar_and_batches() {
        let doc = generate::xmark(4, 11);
        for (anc_l, desc_l) in [
            ("item", "keyword"),
            ("parlist", "listitem"),
            ("parlist", "parlist"),
            ("description", "bold"),
            ("site", "item"),
            ("mail", "keyword"),
        ] {
            let anc = ids(&doc, anc_l);
            let desc = ids(&doc, desc_l);
            for axis in [Axis::Child, Axis::Descendant] {
                let want = stack_tree_pairs(&anc, &desc, axis);
                for block in [1, 2, 13, 64] {
                    let ac = IdColumns::from_pairs(&anc, block);
                    let dc = IdColumns::from_pairs(&desc, block);
                    assert_eq!(
                        stack_tree_pairs_columnar(&ac, &dc, axis),
                        want,
                        "{anc_l} {axis:?} {desc_l} block={block}"
                    );
                }
            }
        }
        // dense pairing goes through the bulk-emit path; sparse
        // ancestors exercise the gallop
        let anc = ids(&doc, "site");
        let desc = ids(&doc, "item");
        let ac = IdColumns::from_pairs(&anc, 64);
        let dc = IdColumns::from_pairs(&desc, 64);
        let mut m = obs::ExecMetrics::default();
        let got = stack_tree_pairs_columnar_metered(&ac, &dc, Axis::Descendant, &mut m);
        assert_eq!(got, stack_tree_pairs(&anc, &desc, Axis::Descendant));
        assert!(m.batches_scanned > 0, "{m:?}");
        let anc = ids(&doc, "mail");
        let desc = ids(&doc, "keyword");
        let ac = IdColumns::from_pairs(&anc, 64);
        let dc = IdColumns::from_pairs(&desc, 64);
        let mut m = obs::ExecMetrics::default();
        stack_tree_pairs_columnar_metered(&ac, &dc, Axis::Descendant, &mut m);
        assert!(m.elements_skipped > 0, "{m:?}");
    }

    #[test]
    fn columnar_merge_handles_duplicate_ids() {
        let doc = generate::xmark(3, 11);
        let anc = ids(&doc, "item");
        let mut desc: Vec<(StructuralId, usize)> = Vec::new();
        for (i, (sid, _)) in ids(&doc, "keyword").into_iter().enumerate() {
            for _ in 0..=(i % 3) {
                desc.push((sid, desc.len()));
            }
        }
        for axis in [Axis::Child, Axis::Descendant] {
            let want = stack_tree_pairs(&anc, &desc, axis);
            for block in [1, 2, 13, 64] {
                let ac = IdColumns::from_pairs(&anc, block);
                let dc = IdColumns::from_pairs(&desc, block);
                assert_eq!(
                    stack_tree_pairs_columnar(&ac, &dc, axis),
                    want,
                    "{axis:?} block={block}"
                );
            }
        }
    }

    #[test]
    fn empty_inputs() {
        assert!(stack_tree_pairs(&[], &[], Axis::Child).is_empty());
        let one = vec![(StructuralId::new(0, 10, 1), 0)];
        assert!(stack_tree_pairs(&one, &[], Axis::Descendant).is_empty());
        assert!(stack_tree_pairs(&[], &one, Axis::Descendant).is_empty());
    }
}
