//! Physical structural-join algorithms (§1.2.3).
//!
//! [`stack_tree_pairs`] implements the stack-based merge of Al-Khalifa et
//! al.'s `StackTree` family: given an ancestor-candidate sequence and a
//! descendant-candidate sequence, both sorted by the pre rank of their ID
//! attribute, it produces all `(ancestor_index, descendant_index)` match
//! pairs in a single merge pass, maintaining a stack of ancestors whose
//! pre/post interval is still open.
//!
//! `StackTreeDesc` corresponds to emitting the pairs sorted by descendant
//! ID (which is how this function naturally emits them); `StackTreeAnc`
//! output order is obtained by a stable re-sort on the ancestor index —
//! the evaluator picks whichever order downstream operators need.
//! [`nested_loop_pairs`] is the naive O(|L|·|R|) fallback kept for the
//! physical-operator ablation bench.

use obs::{Meter, NoMeter};
use xmltree::StructuralId;

use crate::plan::Axis;
use crate::skip::SkipIndex;

/// Does `anc` match `desc` on the given axis?
#[inline]
pub(crate) fn axis_match(anc: StructuralId, desc: StructuralId, axis: Axis) -> bool {
    match axis {
        Axis::Child => anc.is_parent_of(desc),
        Axis::Descendant => anc.is_ancestor_of(desc),
    }
}

/// Pop every stack entry whose pre/post interval closed before `post`:
/// the stack holds candidates with `top.pre` below the incoming node's
/// pre rank, so `top` contains the incoming node iff `top.post > post`
/// (pre and post are separate counters, so the test must compare post
/// against post, not post against pre).
#[inline]
fn pop_closed(stack: &mut Vec<(StructuralId, usize)>, post: u32) {
    while let Some(&(top, _)) = stack.last() {
        if top.post < post {
            stack.pop();
        } else {
            break;
        }
    }
}

/// Compute all structural match pairs between `anc[i].0` and `desc[j].0`
/// using the StackTree merge. Both slices **must** be sorted by `pre` rank
/// of the carried [`StructuralId`]; the second component of each element is
/// an opaque payload index returned in the pairs.
///
/// Output pairs are emitted in descendant order (StackTreeDesc order) —
/// i.e. sorted by `desc` position, with the matching ancestors innermost
/// (deepest) first for each descendant.
pub fn stack_tree_pairs(
    anc: &[(StructuralId, usize)],
    desc: &[(StructuralId, usize)],
    axis: Axis,
) -> Vec<(usize, usize)> {
    stack_tree_pairs_metered(anc, desc, axis, &mut NoMeter)
}

/// [`stack_tree_pairs`] with execution counters: axis tests on the
/// stack-scan loop count as comparisons, and the open-ancestor stack's
/// high-water mark is recorded. With [`NoMeter`] this monomorphizes to
/// the unmetered kernel.
pub fn stack_tree_pairs_metered<M: Meter>(
    anc: &[(StructuralId, usize)],
    desc: &[(StructuralId, usize)],
    axis: Axis,
    meter: &mut M,
) -> Vec<(usize, usize)> {
    stack_tree_pairs_indexed_metered(anc, desc, axis, None, meter)
}

/// [`stack_tree_pairs`] with an optional skip index over the descendant
/// stream. Whenever the ancestor stack runs empty, every descendant up
/// to the next ancestor candidate's pre rank matches nothing, so the
/// merge seeks the descendant cursor past it instead of stepping — and
/// drops the whole descendant tail once ancestors are exhausted. With
/// `None` this is exactly the linear merge.
pub fn stack_tree_pairs_indexed(
    anc: &[(StructuralId, usize)],
    desc: &[(StructuralId, usize)],
    axis: Axis,
    desc_index: Option<&SkipIndex>,
) -> Vec<(usize, usize)> {
    stack_tree_pairs_indexed_metered(anc, desc, axis, desc_index, &mut NoMeter)
}

/// [`stack_tree_pairs_indexed`] with execution counters; seeks report
/// jumped-over elements and pruned fence blocks.
pub fn stack_tree_pairs_indexed_metered<M: Meter>(
    anc: &[(StructuralId, usize)],
    desc: &[(StructuralId, usize)],
    axis: Axis,
    desc_index: Option<&SkipIndex>,
    meter: &mut M,
) -> Vec<(usize, usize)> {
    debug_assert!(anc.windows(2).all(|w| w[0].0.pre <= w[1].0.pre));
    debug_assert!(desc.windows(2).all(|w| w[0].0.pre <= w[1].0.pre));
    // Most workloads pair each descendant with O(1) ancestors, so the
    // smaller input is a good first-allocation guess for the output.
    let mut out = Vec::with_capacity(anc.len().min(desc.len()));
    let mut stack: Vec<(StructuralId, usize)> = Vec::with_capacity(16);
    let mut ai = 0;
    let mut di = 0;
    while di < desc.len() {
        let (d, dpay) = desc[di];
        // a descendant that arrives with the stack empty can only match
        // ancestors still ahead, all with larger pre: seek straight to
        // the next ancestor's pre rank (or drop the tail if none remain)
        if stack.is_empty() && !(ai < anc.len() && anc[ai].0.pre <= d.pre) {
            // skipped counts exclude the element being inspected (it was
            // read to decide the seek) — the same convention as the twig
            // kernel, so `elements_skipped` is comparable across kernels
            if let Some(ix) = desc_index {
                if ai >= anc.len() {
                    meter.skipped((desc.len() - di - 1) as u64);
                    break;
                }
                // anc[ai].0.pre > d.pre here: descendants up to that pre
                // rank (inclusive — a node is not its own ancestor)
                // cannot match anc[ai] or anything after it
                let s = ix.seek_descendant_of(desc, di, anc[ai].0);
                meter.blocks_pruned(s.blocks_pruned);
                meter.skipped((s.pos - di - 1) as u64);
                di = s.pos;
                continue;
            }
        }
        // push all ancestors that start before this descendant, closing
        // the stack entries that cannot contain them
        while ai < anc.len() && anc[ai].0.pre <= d.pre {
            let (a, apay) = anc[ai];
            pop_closed(&mut stack, a.post);
            stack.push((a, apay));
            meter.stack_depth(stack.len());
            ai += 1;
        }
        // close stack entries that are not ancestors of `d`
        pop_closed(&mut stack, d.post);
        // the stack is now exactly the ancestor chain of `d` among the
        // candidates; emit matches (all of them for `//`, the depth-adjacent
        // ones for `/`)
        meter.comparisons(stack.len() as u64);
        for &(a, apay) in stack.iter().rev() {
            if axis_match(a, d, axis) {
                out.push((apay, dpay));
            }
        }
        di += 1;
    }
    out
}

/// Naive nested-loop structural join; quadratic, order-insensitive. Kept
/// as the baseline for the StackTree ablation (DESIGN.md §choices).
pub fn nested_loop_pairs(
    anc: &[(StructuralId, usize)],
    desc: &[(StructuralId, usize)],
    axis: Axis,
) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for &(d, dpay) in desc {
        for &(a, apay) in anc {
            if axis_match(a, d, axis) {
                out.push((apay, dpay));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmltree::generate;

    /// Collect `(sid, index)` pairs of all elements with a label, sorted by
    /// pre (document order gives that for free).
    fn ids(doc: &xmltree::Document, label: &str) -> Vec<(StructuralId, usize)> {
        doc.nodes_with_label(label, xmltree::NodeKind::Element)
            .enumerate()
            .map(|(i, n)| (doc.structural_id(n), i))
            .collect()
    }

    #[test]
    fn matches_nested_loop_on_xmark() {
        let doc = generate::xmark(4, 11);
        for (anc_l, desc_l) in [
            ("item", "keyword"),
            ("parlist", "listitem"),
            ("listitem", "parlist"),
            ("description", "bold"),
            ("site", "item"),
        ] {
            let anc = ids(&doc, anc_l);
            let desc = ids(&doc, desc_l);
            for axis in [Axis::Child, Axis::Descendant] {
                let mut a = stack_tree_pairs(&anc, &desc, axis);
                let mut b = nested_loop_pairs(&anc, &desc, axis);
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "{anc_l} {axis:?} {desc_l}");
            }
        }
    }

    #[test]
    fn recursive_ancestors_all_found() {
        // parlist can nest inside listitem inside parlist: a deep keyword
        // has several parlist ancestors, all of which must be paired.
        let doc = generate::xmark(3, 7);
        let anc = ids(&doc, "parlist");
        let desc = ids(&doc, "keyword");
        let pairs = stack_tree_pairs(&anc, &desc, Axis::Descendant);
        // at least one keyword has ≥ 2 parlist ancestors
        let mut per_desc = std::collections::HashMap::new();
        for (_, d) in &pairs {
            *per_desc.entry(*d).or_insert(0) += 1;
        }
        assert!(
            per_desc.values().any(|&c| c >= 2),
            "recursion not exercised"
        );
    }

    #[test]
    fn output_in_descendant_order() {
        let doc = generate::xmark(3, 5);
        let anc = ids(&doc, "item");
        let desc = ids(&doc, "keyword");
        let pairs = stack_tree_pairs(&anc, &desc, Axis::Descendant);
        assert!(pairs.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn metered_variant_counts_and_matches_unmetered() {
        let doc = generate::xmark(3, 7);
        let anc = ids(&doc, "parlist");
        let desc = ids(&doc, "keyword");
        let mut metrics = obs::ExecMetrics::default();
        let metered = stack_tree_pairs_metered(&anc, &desc, Axis::Descendant, &mut metrics);
        assert_eq!(metered, stack_tree_pairs(&anc, &desc, Axis::Descendant));
        // parlist recursion guarantees a stack deeper than one and at
        // least one comparison per emitted pair
        assert!(metrics.stack_high_water >= 2, "{metrics:?}");
        assert!(metrics.comparisons >= metered.len() as u64);
    }

    #[test]
    fn indexed_merge_matches_linear_and_skips() {
        let doc = generate::xmark(4, 11);
        for (anc_l, desc_l) in [
            ("bold", "keyword"),
            ("item", "keyword"),
            ("parlist", "parlist"),
            ("site", "item"),
        ] {
            let anc = ids(&doc, anc_l);
            let desc = ids(&doc, desc_l);
            for axis in [Axis::Child, Axis::Descendant] {
                let want = stack_tree_pairs(&anc, &desc, axis);
                for block in [1, 7, 64] {
                    let ix = SkipIndex::with_block(&desc, block);
                    assert_eq!(
                        stack_tree_pairs_indexed(&anc, &desc, axis, Some(&ix)),
                        want,
                        "{anc_l} {axis:?} {desc_l} block={block}"
                    );
                }
            }
        }
        // sparse ancestors (mails) over a dense descendant stream must
        // skip: the keywords under item descriptions between consecutive
        // mail subtrees are seeked over wholesale
        let anc = ids(&doc, "mail");
        let desc = ids(&doc, "keyword");
        let ix = SkipIndex::build(&desc);
        let mut metrics = obs::ExecMetrics::default();
        let got = stack_tree_pairs_indexed_metered(
            &anc,
            &desc,
            Axis::Descendant,
            Some(&ix),
            &mut metrics,
        );
        assert_eq!(got, stack_tree_pairs(&anc, &desc, Axis::Descendant));
        assert!(metrics.elements_skipped > 0, "{metrics:?}");
    }

    #[test]
    fn indexed_merge_handles_duplicate_descendant_ids() {
        // join inputs can repeat a node ID across tuples (a view column
        // joined on the same node), so the kernel's index must stay
        // exact on non-strictly sorted streams — including duplicates
        // straddling fence-block boundaries
        let doc = generate::xmark(3, 11);
        let anc = ids(&doc, "item");
        let mut desc: Vec<(StructuralId, usize)> = Vec::new();
        for (i, (sid, _)) in ids(&doc, "keyword").into_iter().enumerate() {
            for _ in 0..=(i % 3) {
                desc.push((sid, desc.len()));
            }
        }
        for axis in [Axis::Child, Axis::Descendant] {
            let mut want = nested_loop_pairs(&anc, &desc, axis);
            want.sort_unstable();
            for block in [1, 2, 7, 64] {
                let ix = SkipIndex::with_block(&desc, block);
                let mut got = stack_tree_pairs_indexed(&anc, &desc, axis, Some(&ix));
                got.sort_unstable();
                assert_eq!(got, want, "{axis:?} block={block}");
            }
        }
    }

    #[test]
    fn empty_inputs() {
        assert!(stack_tree_pairs(&[], &[], Axis::Child).is_empty());
        let one = vec![(StructuralId::new(0, 10, 1), 0)];
        assert!(stack_tree_pairs(&one, &[], Axis::Descendant).is_empty());
        assert!(stack_tree_pairs(&[], &one, Axis::Descendant).is_empty());
    }
}
