//! The XML construction operator `xml_templ` (§1.2.2, Example 1.2.4).
//!
//! A [`Template`] describes how the (possibly nested) attributes of each
//! input tuple are wrapped in newly constructed elements. For every input
//! tuple, `xml_templ` emits one serialized XML string; iteration over
//! nested collection attributes is explicit ([`Template::ForEach`]), which
//! is what the paper's tagging templates like
//! `<res_item> A1 <res_desc> A11 </res_desc> </res_item>` denote implicitly.
//!
//! The operator runs in constant time per constructed element and its
//! memory needs are bounded by the largest element to construct, matching
//! the paper's `xml_templ,φ` physical operator.

use crate::value::{Schema, Tuple, Value};

/// A tagging template.
#[derive(Debug, Clone, PartialEq)]
pub enum Template {
    /// Construct `<tag>…children…</tag>`.
    Element {
        tag: String,
        children: Vec<Template>,
    },
    /// Literal character data.
    Text(String),
    /// Splice the value of an attribute of the current tuple (dotted name
    /// resolved against the *current* nesting level). Null splices nothing —
    /// "an element must still be constructed, albeit with no content" (§3.1).
    Attr(String),
    /// Iterate the tuples of a collection attribute of the current tuple,
    /// instantiating `body` once per nested tuple.
    ForEach { attr: String, body: Vec<Template> },
}

impl Template {
    pub fn elem(tag: impl Into<String>, children: Vec<Template>) -> Template {
        Template::Element {
            tag: tag.into(),
            children,
        }
    }

    pub fn attr(name: impl Into<String>) -> Template {
        Template::Attr(name.into())
    }

    pub fn for_each(attr: impl Into<String>, body: Vec<Template>) -> Template {
        Template::ForEach {
            attr: attr.into(),
            body,
        }
    }

    /// Instantiate the template for one tuple, appending to `out`.
    pub fn render(&self, schema: &Schema, tuple: &Tuple, out: &mut String) {
        match self {
            Template::Element { tag, children } => {
                out.push('<');
                out.push_str(tag);
                out.push('>');
                for c in children {
                    c.render(schema, tuple, out);
                }
                out.push_str("</");
                out.push_str(tag);
                out.push('>');
            }
            Template::Text(t) => out.push_str(t),
            Template::Attr(name) => {
                if let Some(path) = schema.resolve(name) {
                    if path.len() == 1 {
                        render_value(tuple.get(path[0]), out);
                    }
                }
            }
            Template::ForEach { attr, body } => {
                let Some(idx) = schema.index_of(attr) else {
                    return;
                };
                let Some(inner) = schema.schema_at(&[idx]) else {
                    return;
                };
                let inner = inner.clone();
                if let Value::Coll(c) = tuple.get(idx) {
                    for t in &c.tuples {
                        for b in body {
                            b.render(&inner, t, out);
                        }
                    }
                }
            }
        }
    }
}

fn render_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => {}
        Value::Str(s) => out.push_str(s),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Id(i) => out.push_str(&format!("({},{})", i.pre, i.post)),
        Value::Coll(c) => {
            for t in &c.tuples {
                for v in &t.0 {
                    render_value(v, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{CollKind, Collection, Field};

    #[test]
    fn renders_nested_template() {
        // schema R(A1(A11)), template <res_item>{A1…<res_desc>{A11}</res_desc>}</res_item>
        let schema = Schema::new(vec![Field::nested("A1", Schema::atoms(&["A11"]))]);
        let tuple = Tuple::new(vec![Value::Coll(Collection {
            kind: CollKind::List,
            tuples: vec![
                Tuple::new(vec![Value::str("x")]),
                Tuple::new(vec![Value::str("y")]),
            ],
        })]);
        let t = Template::elem(
            "res_item",
            vec![Template::for_each(
                "A1",
                vec![Template::elem("res_desc", vec![Template::attr("A11")])],
            )],
        );
        let mut out = String::new();
        t.render(&schema, &tuple, &mut out);
        assert_eq!(
            out,
            "<res_item><res_desc>x</res_desc><res_desc>y</res_desc></res_item>"
        );
    }

    #[test]
    fn null_splices_nothing_but_element_is_built() {
        let schema = Schema::atoms(&["A"]);
        let tuple = Tuple::new(vec![Value::Null]);
        let t = Template::elem("res", vec![Template::attr("A")]);
        let mut out = String::new();
        t.render(&schema, &tuple, &mut out);
        assert_eq!(out, "<res></res>");
    }

    #[test]
    fn empty_collection_renders_nothing() {
        let schema = Schema::new(vec![Field::nested("A", Schema::atoms(&["B"]))]);
        let tuple = Tuple::new(vec![Value::Coll(Collection::list(vec![]))]);
        let t = Template::elem(
            "r",
            vec![Template::for_each("A", vec![Template::attr("B")])],
        );
        let mut out = String::new();
        t.render(&schema, &tuple, &mut out);
        assert_eq!(out, "<r></r>");
    }
}
