//! Columnar ID layout and branch-free range kernels — the vectorized
//! access-module implementation behind `columnar_kernels`.
//!
//! The scalar kernels walk `&[(StructuralId, usize)]` one 16-byte struct
//! at a time; every advance is a dependent load plus an unpredictable
//! branch. [`IdColumns`] stores the same stream as separate `pre` /
//! `post` / `depth` columns (structure of arrays) with per-block
//! `max_post` fences mirroring [`SkipIndex`](crate::skip::SkipIndex)
//! level 0, and the kernels in this module answer the two questions the
//! join loops actually ask in bulk:
//!
//! * *where does the next interesting element start?* —
//!   [`IdColumns::seek_pre_gt`] gallops over the sorted `pre` column,
//!   [`IdColumns::seek_past`] additionally steps `max_post` fences;
//! * *how long is the run I can process without a stack transition?* —
//!   [`IdColumns::leading_run`] counts leading elements inside a
//!   containment window `pre < p ∧ post < q` a whole block at a time.
//!
//! The free functions ([`find_first_ge`], [`find_first_gt`],
//! [`count_leading_lt`], [`count_leading_lt2`]) are the raw loops over
//! bare `u32` columns, written as chunked reductions with no
//! data-dependent branches inside a block so LLVM autovectorizes them
//! (`cnt += (x < bound) as usize` folds compile to SIMD compares +
//! horizontal adds on any target with vector units; there is no
//! arch-specific intrinsic code here).
//!
//! Soundness under duplicates: streams are only *non-strictly*
//! pre-sorted (multi-tuple join inputs repeat IDs — the PR 5 lesson),
//! so every seek bound in this module is phrased as `pre > bound` /
//! count-of-`pre <= bound`, never `bound + 1` arithmetic, and the
//! fences bound whole blocks inclusively.

use obs::Meter;
use xmltree::StructuralId;

use crate::skip::{SidLike, DEFAULT_BLOCK};

/// Lanes per chunk of the free-function reduction loops. 64 `u32`s span
/// 4–8 cache lines and give the compiler a full vector register's worth
/// of independent compares per step on every current ISA.
pub const LANE: usize = 64;

/// First fold width of the adaptive member kernels
/// ([`IdColumns::leading_run`], [`IdColumns::seek_pre_gt`]). Dense
/// merges interleave the streams, so the typical run/advance is a
/// handful of elements: a full [`LANE`]-wide fold there costs more than
/// the scalar steps it replaces. The kernels therefore open with one
/// narrow fold and double the width while full chunks keep passing —
/// short runs pay ~16 fused compares, long runs still reach full-width
/// batches after two doublings.
pub const SEED_LANE: usize = 16;

/// First index `i >= from` with `col[i] >= bound`, or `col.len()`.
/// Requires `col[from..]` sorted ascending (the count of `< bound`
/// elements inside a block *is* the offset of the first hit).
#[inline]
pub fn find_first_ge(col: &[u32], from: usize, bound: u32) -> usize {
    debug_assert!(col[from.min(col.len())..].windows(2).all(|w| w[0] <= w[1]));
    let mut i = from.min(col.len());
    while i < col.len() {
        let end = (i + LANE).min(col.len());
        let width = end - i;
        let below: usize = col[i..end].iter().map(|&x| (x < bound) as usize).sum();
        if below < width {
            return i + below;
        }
        i = end;
    }
    col.len()
}

/// First index `i >= from` with `col[i] > bound`, or `col.len()`.
/// Requires `col[from..]` sorted ascending.
#[inline]
pub fn find_first_gt(col: &[u32], from: usize, bound: u32) -> usize {
    if bound == u32::MAX {
        return col.len();
    }
    find_first_ge(col, from, bound + 1)
}

/// Length of the longest prefix of `col[from..]` with every element
/// `< bound`. No sortedness requirement: the per-chunk fold carries a
/// sticky all-below flag (`ok &= x < bound; run += ok`), which is still
/// branch-free inside the chunk.
#[inline]
pub fn count_leading_lt(col: &[u32], from: usize, bound: u32) -> usize {
    let mut i = from.min(col.len());
    let start = i;
    while i < col.len() {
        let end = (i + LANE).min(col.len());
        let mut ok = 1usize;
        let mut run = 0usize;
        for &x in &col[i..end] {
            ok &= (x < bound) as usize;
            run += ok;
        }
        i += run;
        if run < end - (i - run) {
            break;
        }
    }
    i - start
}

/// Length of the longest prefix of the paired columns starting at `from`
/// with `a[i] < a_bound && b[i] < b_bound` — the two-sided containment
/// window test (`pre` below the next boundary, `post` inside the open
/// ancestor). Same sticky-flag fold as [`count_leading_lt`].
#[inline]
pub fn count_leading_lt2(a: &[u32], b: &[u32], from: usize, a_bound: u32, b_bound: u32) -> usize {
    debug_assert_eq!(a.len(), b.len());
    let mut i = from.min(a.len());
    let start = i;
    while i < a.len() {
        let end = (i + LANE).min(a.len());
        let mut ok = 1usize;
        let mut run = 0usize;
        for (&x, &y) in a[i..end].iter().zip(&b[i..end]) {
            ok &= ((x < a_bound) & (y < b_bound)) as usize;
            run += ok;
        }
        i += run;
        if run < end - (i - run) {
            break;
        }
    }
    i - start
}

/// A pre-sorted ID stream in structure-of-arrays layout: separate
/// `pre`/`post`/`depth` columns plus an optional payload column, with a
/// `max_post` fence per block of `block` elements (the `min_pre` fence
/// of the skip index is implicit — `pre` is sorted, so a block's
/// minimum is its first element).
///
/// The payload column is elided for identity payloads (the storage
/// layer's plain columns, where payload `i` is position `i`), so the
/// resident cost there is exactly the 10 packed bytes per element of
/// the three ID components.
#[derive(Debug, Clone, Default)]
pub struct IdColumns {
    pre: Vec<u32>,
    post: Vec<u32>,
    depth: Vec<u16>,
    /// Empty ⇒ identity (payload of element `i` is `i`).
    payload: Vec<u32>,
    block: usize,
    /// `fence_max_post[b]` bounds every `post` in block `b`.
    fence_max_post: Vec<u32>,
}

impl IdColumns {
    /// Pack a plain pre-sorted stream with the default block size;
    /// payloads are the element positions.
    pub fn from_sids<T: SidLike>(stream: &[T]) -> IdColumns {
        IdColumns::from_sids_with_block(stream, DEFAULT_BLOCK)
    }

    /// [`IdColumns::from_sids`] with an explicit fence block size
    /// (clamped to ≥ 1); exposed so tests can exercise degenerate
    /// layouts.
    pub fn from_sids_with_block<T: SidLike>(stream: &[T], block: usize) -> IdColumns {
        let mut c = IdColumns::packed(stream.iter().map(|e| e.sid()), block);
        debug_assert!(
            c.pre.windows(2).all(|w| w[0] <= w[1]),
            "stream not pre-sorted"
        );
        c.payload = Vec::new();
        c
    }

    /// Pack a `(id, payload)` kernel stream. Payloads are stored as
    /// `u32`; streams with ≥ 2³² tuples must stay on the scalar path.
    pub fn from_pairs(stream: &[(StructuralId, usize)], block: usize) -> IdColumns {
        let mut c = IdColumns::packed(stream.iter().map(|e| e.0), block);
        c.payload = stream
            .iter()
            .map(|e| u32::try_from(e.1).expect("columnar payloads must fit in u32"))
            .collect();
        c
    }

    fn packed(ids: impl Iterator<Item = StructuralId>, block: usize) -> IdColumns {
        let block = block.max(1);
        let (mut pre, mut post, mut depth) = (Vec::new(), Vec::new(), Vec::new());
        for sid in ids {
            pre.push(sid.pre);
            post.push(sid.post);
            depth.push(sid.depth);
        }
        let fence_max_post = post
            .chunks(block)
            .map(|c| c.iter().copied().max().unwrap_or(0))
            .collect();
        IdColumns {
            pre,
            post,
            depth,
            payload: Vec::new(),
            block,
            fence_max_post,
        }
    }

    pub fn len(&self) -> usize {
        self.pre.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pre.is_empty()
    }

    /// The fence block size.
    pub fn block(&self) -> usize {
        self.block
    }

    /// The packed pre-rank column (sorted ascending, non-strictly).
    pub fn pre(&self) -> &[u32] {
        &self.pre
    }

    /// The packed post-rank column (unsorted).
    pub fn post(&self) -> &[u32] {
        &self.post
    }

    /// The packed depth column.
    pub fn depth(&self) -> &[u16] {
        &self.depth
    }

    /// Reassemble element `i` as a [`StructuralId`].
    #[inline]
    pub fn sid(&self, i: usize) -> StructuralId {
        StructuralId::new(self.pre[i], self.post[i], self.depth[i])
    }

    /// Payload of element `i` (its position for storage-owned columns).
    #[inline]
    pub fn payload(&self, i: usize) -> usize {
        if self.payload.is_empty() {
            i
        } else {
            self.payload[i] as usize
        }
    }

    /// The raw payload column, `None` for identity payloads — bulk
    /// consumers hoist the identity test out of their append loops.
    #[inline]
    pub fn payloads(&self) -> Option<&[u32]> {
        if self.payload.is_empty() {
            None
        } else {
            Some(&self.payload)
        }
    }

    /// Materialize back to the scalar kernels' pair representation.
    pub fn to_pairs(&self) -> Vec<(StructuralId, usize)> {
        (0..self.len())
            .map(|i| (self.sid(i), self.payload(i)))
            .collect()
    }

    /// First position `>= from` with `pre > bound` (the columnar
    /// [`seek_descendant_of`](crate::skip::SkipIndex::seek_descendant_of)):
    /// one branch-free [`SEED_LANE`]-wide chunk scan for the common
    /// short advance, then an exponential gallop over the sorted column
    /// for long jumps — the selective-twig case stays `O(log distance)`,
    /// not `O(n / LANE)`.
    #[inline]
    pub fn seek_pre_gt<M: Meter>(&self, from: usize, bound: u32, meter: &mut M) -> usize {
        let n = self.pre.len();
        if from >= n {
            return n;
        }
        // scalar prologue: the dense prune path usually advances a step
        // or two — answer that without a fold
        let mut lead = from;
        while lead < n && lead < from + 2 {
            if self.pre[lead] > bound {
                meter.vector_compares((lead - from + 1) as u64);
                return lead;
            }
            lead += 1;
        }
        meter.vector_compares((lead - from) as u64);
        if lead == n {
            return n;
        }
        let chunk = (lead + SEED_LANE).min(n);
        let width = chunk - lead;
        let below: usize = self.pre[lead..chunk]
            .iter()
            .map(|&x| (x <= bound) as usize)
            .sum();
        meter.vector_compares(width as u64);
        meter.batches(1);
        let pos = if below < width {
            lead + below
        } else if chunk == n {
            n
        } else {
            // gallop: everything before `lo` is known `<= bound`
            let mut lo = chunk;
            let mut step = SEED_LANE;
            let mut probes = 0u64;
            while lo + step < n && self.pre[lo + step - 1] <= bound {
                lo += step;
                step <<= 1;
                probes += 1;
            }
            let hi = (lo + step).min(n);
            probes += (hi - lo).max(1).ilog2() as u64 + 1;
            meter.vector_compares(probes);
            lo + self.pre[lo..hi].partition_point(|&x| x <= bound)
        };
        // whole fence blocks the jump cleared without scanning them
        let cleared = (pos / self.block).saturating_sub(from / self.block + 1);
        meter.blocks_pruned(cleared as u64);
        pos
    }

    /// First position `>= from` past the anchor's whole subtree
    /// (`pre > anchor.pre && post > anchor.post`) — the columnar
    /// [`seek_past`](crate::skip::SkipIndex::seek_past). After the
    /// sorted-pre seek, blocks whose `max_post` fence stays at or below
    /// `anchor.post` are stepped over whole.
    pub fn seek_past<M: Meter>(&self, from: usize, anchor: StructuralId, meter: &mut M) -> usize {
        let n = self.pre.len();
        let mut i = self.seek_pre_gt(from, anchor.pre, meter);
        while i < n {
            let b = i / self.block;
            if self.fence_max_post[b] <= anchor.post {
                // pre stays > anchor.pre for the whole suffix, so the
                // fence alone disqualifies the block
                meter.blocks_pruned(1);
                i = (b + 1) * self.block;
                continue;
            }
            let end = ((b + 1) * self.block).min(n);
            let run = count_leading_lt(&self.post[..end], i, anchor.post + 1);
            meter.batches(1);
            meter.vector_compares((end - i) as u64);
            i += run;
            if i < end {
                return i;
            }
        }
        n
    }

    /// Length of the leading run at `from` inside the containment
    /// window `pre < pre_bound && post < post_bound` — how many
    /// elements a kernel can consume with no stack transition. Counted
    /// with the sticky-flag fold over chunks that start [`SEED_LANE`]
    /// wide and double while full chunks keep passing (capped at the
    /// fence block size), so the short runs of interleaved dense merges
    /// pay one narrow fold instead of a whole block.
    #[inline]
    pub fn leading_run<M: Meter>(
        &self,
        from: usize,
        pre_bound: u32,
        post_bound: u32,
        meter: &mut M,
    ) -> usize {
        let n = self.pre.len();
        let mut i = from.min(n);
        let start = i;
        // scalar prologue: interleaved merges end most runs within two
        // elements — answer those with two fused compares, not a fold
        while i < n && i < start + 2 {
            if self.pre[i] < pre_bound && self.post[i] < post_bound {
                i += 1;
            } else {
                meter.vector_compares((i - start + 1) as u64);
                return i - start;
            }
        }
        meter.vector_compares((i - start) as u64);
        let cap = self.block.max(SEED_LANE);
        let mut width = SEED_LANE;
        while i < n {
            let end = (i + width).min(n);
            let mut ok = 1usize;
            let mut run = 0usize;
            for (&p, &q) in self.pre[i..end].iter().zip(&self.post[i..end]) {
                ok &= ((p < pre_bound) & (q < post_bound)) as usize;
                run += ok;
            }
            meter.batches(1);
            meter.vector_compares((end - i) as u64);
            i += run;
            if run < end - (i - run) {
                break;
            }
            width = (width * 2).min(cap);
        }
        i - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::NoMeter;
    use xmltree::{generate, NodeKind};

    fn ids(doc: &xmltree::Document, label: &str) -> Vec<StructuralId> {
        doc.nodes_with_label(label, NodeKind::Element)
            .map(|n| doc.structural_id(n))
            .collect()
    }

    #[test]
    fn find_first_matches_partition_point() {
        let mut col: Vec<u32> = (0..500u32).map(|i| i * 3 % 7 + i).collect();
        col.sort_unstable();
        for bound in [0u32, 1, 5, 100, 300, 497, 10_000, u32::MAX] {
            for from in [0usize, 1, 63, 64, 65, 250, 499, 500] {
                assert_eq!(
                    find_first_ge(&col, from, bound),
                    from + col[from..].partition_point(|&x| x < bound),
                    "ge bound={bound} from={from}"
                );
                assert_eq!(
                    find_first_gt(&col, from, bound),
                    from + col[from..].partition_point(|&x| x <= bound),
                    "gt bound={bound} from={from}"
                );
            }
        }
        assert_eq!(find_first_ge(&[], 0, 5), 0);
        assert_eq!(find_first_gt(&[1, 2], 0, u32::MAX), 2);
    }

    #[test]
    fn leading_counts_match_naive() {
        let a: Vec<u32> = (0..300u32).map(|i| (i * 37) % 101).collect();
        let b: Vec<u32> = (0..300u32).map(|i| (i * 53) % 97).collect();
        for from in [0usize, 1, 63, 64, 65, 150, 299, 300] {
            for bound in [0u32, 1, 50, 96, 200] {
                let naive = a[from.min(a.len())..]
                    .iter()
                    .take_while(|&&x| x < bound)
                    .count();
                assert_eq!(
                    count_leading_lt(&a, from, bound),
                    naive,
                    "lt from={from} bound={bound}"
                );
                let naive2 = (from.min(a.len())..a.len())
                    .take_while(|&i| a[i] < bound && b[i] < 60)
                    .count();
                assert_eq!(
                    count_leading_lt2(&a, &b, from, bound, 60),
                    naive2,
                    "lt2 from={from} bound={bound}"
                );
            }
        }
    }

    #[test]
    fn columns_roundtrip_and_seeks_match_linear() {
        let doc = generate::xmark(3, 11);
        let keywords = ids(&doc, "keyword");
        let items = ids(&doc, "item");
        for block in [1, 2, 13, 64, keywords.len() + 5] {
            let cols = IdColumns::from_sids_with_block(&keywords, block);
            assert_eq!(cols.len(), keywords.len());
            for (i, &sid) in keywords.iter().enumerate() {
                assert_eq!(cols.sid(i), sid);
                assert_eq!(cols.payload(i), i);
            }
            for anchor in items.iter().step_by(3) {
                for from in [0, 1, keywords.len() / 2, keywords.len() - 1] {
                    let lin_gt = (from..keywords.len())
                        .find(|&i| keywords[i].pre > anchor.pre)
                        .unwrap_or(keywords.len());
                    assert_eq!(
                        cols.seek_pre_gt(from, anchor.pre, &mut NoMeter),
                        lin_gt,
                        "pre_gt block={block} from={from}"
                    );
                    let lin_past = (from..keywords.len())
                        .find(|&i| keywords[i].pre > anchor.pre && keywords[i].post > anchor.post)
                        .unwrap_or(keywords.len());
                    assert_eq!(
                        cols.seek_past(from, *anchor, &mut NoMeter),
                        lin_past,
                        "past block={block} from={from}"
                    );
                }
            }
        }
    }

    #[test]
    fn seeks_match_linear_on_duplicated_streams() {
        // non-strict order with duplicates straddling block boundaries
        let doc = generate::xmark(3, 11);
        let mut keywords: Vec<StructuralId> = Vec::new();
        for (i, sid) in ids(&doc, "keyword").into_iter().enumerate() {
            for _ in 0..=(i % 3) {
                keywords.push(sid);
            }
        }
        let items = ids(&doc, "item");
        for block in [1, 2, 13, 64] {
            let cols = IdColumns::from_sids_with_block(&keywords, block);
            for anchor in items.iter().step_by(5) {
                for from in [0, 1, keywords.len() / 3, keywords.len() - 1] {
                    assert_eq!(
                        cols.seek_pre_gt(from, anchor.pre, &mut NoMeter),
                        (from..keywords.len())
                            .find(|&i| keywords[i].pre > anchor.pre)
                            .unwrap_or(keywords.len()),
                        "block={block} from={from}"
                    );
                }
            }
        }
    }

    #[test]
    fn leading_run_matches_naive_window() {
        let doc = generate::xmark(3, 7);
        let keywords = ids(&doc, "keyword");
        let items = ids(&doc, "item");
        for block in [1, 2, 13, 64] {
            let cols = IdColumns::from_sids_with_block(&keywords, block);
            for a in items.iter().step_by(2) {
                for from in [0usize, 1, keywords.len() / 2] {
                    let naive = keywords[from..]
                        .iter()
                        .take_while(|k| k.pre < a.pre && k.post < a.post)
                        .count();
                    assert_eq!(
                        cols.leading_run(from, a.pre, a.post, &mut NoMeter),
                        naive,
                        "block={block} from={from}"
                    );
                }
            }
        }
    }

    #[test]
    fn payload_pairs_are_preserved() {
        let doc = generate::xmark(2, 7);
        let pairs: Vec<(StructuralId, usize)> = ids(&doc, "item")
            .into_iter()
            .enumerate()
            .map(|(i, s)| (s, i * 10))
            .collect();
        let cols = IdColumns::from_pairs(&pairs, 13);
        assert_eq!(cols.to_pairs(), pairs);
    }

    #[test]
    fn metered_seeks_report_batches_and_compares() {
        let doc = generate::xmark(4, 13);
        let keywords = ids(&doc, "keyword");
        let cols = IdColumns::from_sids(&keywords);
        let mut m = obs::ExecMetrics::default();
        let site = ids(&doc, "site")[0];
        // jump the whole stream: long gallop, few probes
        let pos = cols.seek_pre_gt(0, u32::MAX - 1, &mut m);
        assert_eq!(pos, keywords.len());
        assert!(m.vector_compares > 0, "{m:?}");
        assert!(m.blocks_pruned > 0, "{m:?}");
        let mut m2 = obs::ExecMetrics::default();
        let run = cols.leading_run(1, site.pre + u32::MAX / 2, site.post, &mut m2);
        assert!(run > 0);
        assert!(
            m2.batches_scanned > 0 && m2.vector_compares >= run as u64,
            "{m2:?}"
        );
    }

    #[test]
    fn empty_columns() {
        let cols = IdColumns::from_sids::<StructuralId>(&[]);
        assert!(cols.is_empty());
        assert_eq!(cols.seek_pre_gt(0, 5, &mut NoMeter), 0);
        assert_eq!(
            cols.seek_past(0, StructuralId::new(1, 1, 1), &mut NoMeter),
            0
        );
        assert_eq!(cols.leading_run(0, 10, 10, &mut NoMeter), 0);
    }
}
