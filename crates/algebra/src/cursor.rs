//! Volcano-style pipelined executor: `open` / `next_batch` / `close`
//! cursors streaming vectorized [`TupleBatch`]es through the plan tree,
//! so memory scales with the *resident* state (build sides, breaker
//! buffers, one in-flight batch per operator) instead of with every
//! intermediate relation, and `LIMIT`-style consumers can stop early.
//!
//! The cursor compiler ([`build_cursor`]) classifies each
//! [`LogicalPlan`] node:
//!
//! * **streaming unary** (`Select`, duplicate-preserving `Project`,
//!   `Unnest`, `XmlTemplate`, `Navigate`, `Fetch`, `DeriveAncestorId`,
//!   `Rename`, `CastSchema`) — each child batch is evaluated through the
//!   node as a one-level plan over a shadow catalog, reusing the
//!   materialized [`Evaluator`] kernels verbatim (the same trick
//!   `eval_profiled` uses), so the streamed semantics cannot drift from
//!   the oracle;
//! * **build–probe binary** (`Product`, `Join`, `StructJoin`,
//!   `Difference`) — the right side is drained and kept resident once,
//!   then left batches probe it (all these operators are per-left-tuple,
//!   so batching the left preserves both results and order);
//! * **`Union`** — left exhausted first, then right, pass-through;
//! * **`TwigJoin`** — inputs are drained (they are base ID streams in
//!   fused plans), the holistic merge enumerates solution index vectors,
//!   and output tuples are assembled batch by batch; shapes the holistic
//!   operator does not cover fall back to a one-shot cascade evaluation,
//!   exactly like the oracle;
//! * **pipeline breakers** (`Project` with `distinct`, `GroupBy`,
//!   `Sort`, `NestAll`) — the input is materialized, the node evaluated
//!   once, and the result streamed out. A single-key `Sort` directly
//!   over a base scan whose declared [`crate::OrderSpec`] already
//!   satisfies the key is elided (stable sort of sorted input is the
//!   identity).
//!
//! `close()` propagates cancellation down the tree: children are closed,
//! resident state is released, and every further `next_batch` returns
//! `Ok(None)` without touching the children again.

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::sync::Arc;

use obs::{ExecMetrics, StatsStore};
use xmltree::Document;

use crate::eval::{
    twig_shape, twig_solutions, Catalog, EvalConfig, EvalError, Evaluator, Relation, TwigShape,
};
use crate::plan::{LogicalPlan, TwigStep};
use crate::value::{Schema, Tuple};

// ----------------------------------------------------------------------
// batches, residency, per-op counters

/// A batch of tuples flowing through the cursor tree. The schema lives
/// on the cursor ([`Cursor::schema`]); batches carry only rows. Sizes
/// are *about* [`CursorConfig::batch_size`]: filters emit less,
/// expanding operators (`Unnest`, `Navigate`, joins) may emit more.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TupleBatch {
    pub tuples: Vec<Tuple>,
}

impl TupleBatch {
    pub fn new(tuples: Vec<Tuple>) -> TupleBatch {
        TupleBatch { tuples }
    }

    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

/// Shared gauge of the tuples currently materialized inside a cursor
/// tree — build sides, breaker buffers, twig inputs, plus each
/// operator's last emitted batch — with its high-water mark. This is the
/// `peak-resident-tuples` figure `--profile` and experiment E11 report.
#[derive(Debug, Default)]
pub struct Residency {
    cur: Cell<u64>,
    peak: Cell<u64>,
}

impl Residency {
    fn alloc(&self, n: usize) {
        let cur = self.cur.get() + n as u64;
        self.cur.set(cur);
        if cur > self.peak.get() {
            self.peak.set(cur);
        }
    }

    fn free(&self, n: usize) {
        self.cur.set(self.cur.get().saturating_sub(n as u64));
    }

    pub fn current(&self) -> u64 {
        self.cur.get()
    }

    pub fn peak(&self) -> u64 {
        self.peak.get()
    }
}

/// Live per-operator streaming counters, shared between the cursor that
/// updates them and the [`StreamExec`] that reports them.
#[derive(Debug, Default)]
pub struct OpCells {
    pub batches: Cell<u64>,
    pub rows: Cell<u64>,
    pub metrics: RefCell<ExecMetrics>,
}

/// One operator's registration in a [`StreamExec`], in plan pre-order:
/// display label, breaker flag, live counters.
#[derive(Debug, Clone)]
pub struct OpStats {
    pub label: String,
    pub breaker: bool,
    pub cells: Rc<OpCells>,
}

/// Per-cursor monitor: accounts emitted batches against the shared
/// residency gauge (a cursor's last emitted batch stays resident until
/// its next pull or close) and bumps the op counters when profiling.
struct Mon {
    residency: Rc<Residency>,
    cells: Option<Rc<OpCells>>,
    outstanding: Cell<usize>,
}

impl Mon {
    fn begin_pull(&self) {
        self.residency.free(self.outstanding.replace(0));
    }

    fn emit(&self, tuples: Vec<Tuple>) -> TupleBatch {
        self.residency.alloc(tuples.len());
        self.outstanding.set(tuples.len());
        if let Some(c) = &self.cells {
            c.batches.set(c.batches.get() + 1);
            c.rows.set(c.rows.get() + tuples.len() as u64);
        }
        TupleBatch::new(tuples)
    }

    /// A metrics slot for a per-batch [`Evaluator`], `None` when
    /// profiling is off (the kernels then run the unmetered path).
    fn metrics_slot(&self) -> Option<RefCell<ExecMetrics>> {
        self.cells
            .as_ref()
            .map(|_| RefCell::new(ExecMetrics::default()))
    }

    fn absorb(&self, m: ExecMetrics) {
        if let Some(c) = &self.cells {
            if !m.is_zero() {
                c.metrics.borrow_mut().absorb(&m);
            }
        }
    }

    fn finish(&self) {
        self.begin_pull();
    }
}

// ----------------------------------------------------------------------
// the cursor contract

/// The Volcano cursor contract. `open` is idempotent and recurses into
/// children; `next_batch` returns `Ok(None)` once exhausted (and forever
/// after); `close` releases resident state, propagates cancellation to
/// the children, and makes every further `next_batch` return `Ok(None)`
/// without pulling the children again.
pub trait Cursor {
    fn schema(&self) -> &Schema;
    fn open(&mut self) -> Result<(), EvalError>;
    fn next_batch(&mut self) -> Result<Option<TupleBatch>, EvalError>;
    fn close(&mut self);
}

/// Runtime arm-switch hint for the holistic twig operator, threaded in
/// by the planner when the feedback store says this plan's arm choice
/// has mispredicted before. At the first batch boundary (after the leaf
/// streams are drained, before the merge runs) the twig cursor compares
/// the observed combined leaf cardinality against `est_leaf_rows`; a
/// ≥2× deviation in either direction means the cost model priced the
/// merge from the wrong stream sizes, so the cursor falls over to the
/// cascade arm (the same one-shot path uncovered shapes take — answers
/// are identical by construction) and records the outcome back into the
/// store. The cascade→twig direction has no mid-query hook (an unfused
/// plan carries no `TwigJoin` node); it is handled at re-plan time.
#[derive(Debug, Clone)]
pub struct ArmSwitchHint {
    /// The feedback store the switch outcome is recorded into.
    pub stats: Arc<StatsStore>,
    /// `DocumentVersion` counter the plan runs under (0 = unversioned).
    pub doc_version: u64,
    /// Fingerprint of the executing plan.
    pub plan_fp: u64,
    /// The cost model's estimate of the combined twig leaf cardinality.
    pub est_leaf_rows: f64,
}

/// Observed-vs-estimated leaf-cardinality deviation that triggers the
/// mid-query arm fallover (mirrors the ≥2× wrong-arm telemetry rule).
const ARM_SWITCH_RATIO: f64 = 2.0;

impl ArmSwitchHint {
    /// Whether `observed` leaf rows contradict the estimate badly enough
    /// to fall over to the cascade arm.
    fn should_switch(&self, observed: f64) -> bool {
        let est = self.est_leaf_rows.max(1.0);
        let obs = observed.max(1.0);
        (obs / est).max(est / obs) >= ARM_SWITCH_RATIO
    }
}

/// Knobs for [`build_cursor`].
#[derive(Debug, Clone)]
pub struct CursorConfig {
    /// Target rows per batch (≥ 1; see [`TupleBatch`] for how operators
    /// may deviate).
    pub batch_size: usize,
    /// Physical-operator choices, shared with the materialized oracle.
    pub eval: EvalConfig,
    /// Collect per-operator batch/row counters and kernel metrics,
    /// reported via [`StreamExec::op_stats`].
    pub profiling: bool,
    /// Mid-query twig→cascade fallover hint (see [`ArmSwitchHint`]);
    /// `None` disables the check entirely.
    pub arm_hint: Option<ArmSwitchHint>,
}

impl Default for CursorConfig {
    fn default() -> Self {
        CursorConfig {
            batch_size: 1024,
            eval: EvalConfig::default(),
            profiling: false,
            arm_hint: None,
        }
    }
}

/// A compiled cursor tree plus its shared bookkeeping: the root cursor,
/// the residency gauge, and (when profiling) the pre-order op counters.
pub struct StreamExec<'a> {
    root: Box<dyn Cursor + 'a>,
    residency: Rc<Residency>,
    ops: Vec<OpStats>,
    batch_size: usize,
    opened: bool,
}

impl<'a> StreamExec<'a> {
    pub fn schema(&self) -> &Schema {
        self.root.schema()
    }

    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Pull the next batch (opens the tree on the first call).
    pub fn next_batch(&mut self) -> Result<Option<TupleBatch>, EvalError> {
        if !self.opened {
            self.root.open()?;
            self.opened = true;
        }
        self.root.next_batch()
    }

    /// Cancel the stream: closes the whole cursor tree.
    pub fn close(&mut self) {
        self.root.close();
    }

    /// High-water mark of tuples resident in the tree so far.
    pub fn peak_resident(&self) -> u64 {
        self.residency.peak()
    }

    /// Tuples resident right now (0 after `close`).
    pub fn resident_now(&self) -> u64 {
        self.residency.current()
    }

    /// Per-operator streaming counters in plan pre-order; empty unless
    /// [`CursorConfig::profiling`] was set.
    pub fn op_stats(&self) -> &[OpStats] {
        &self.ops
    }

    /// Drain the stream into a materialized relation.
    pub fn collect(mut self) -> Result<Relation, EvalError> {
        let mut tuples = Vec::new();
        while let Some(b) = self.next_batch()? {
            tuples.extend(b.tuples);
        }
        let schema = self.schema().clone();
        self.close();
        Ok(Relation::new(schema, tuples))
    }
}

// ----------------------------------------------------------------------
// breaker classification

/// Is this plan node a pipeline breaker (must see its whole input before
/// emitting anything)? `Sort` counts even though [`build_cursor`] elides
/// it when the input is a base scan whose declared
/// [`crate::OrderSpec`] already satisfies the single sort key.
pub fn is_pipeline_breaker(plan: &LogicalPlan) -> bool {
    matches!(
        plan,
        LogicalPlan::Project { distinct: true, .. }
            | LogicalPlan::GroupBy { .. }
            | LogicalPlan::Sort { .. }
            | LogicalPlan::NestAll { .. }
    )
}

/// Pre-order labels of every pipeline breaker in `plan` — the
/// annotation the rewriting layer logs before streaming starts.
pub fn pipeline_breakers(plan: &LogicalPlan) -> Vec<String> {
    fn rec(p: &LogicalPlan, out: &mut Vec<String>) {
        if is_pipeline_breaker(p) {
            out.push(p.node_label());
        }
        for c in p.child_plans() {
            rec(c, out);
        }
    }
    let mut out = Vec::new();
    rec(plan, &mut out);
    out
}

// ----------------------------------------------------------------------
// the cursor compiler

/// Compile `plan` into a cursor tree over `catalog` (plus optional
/// source document for navigation operators). Schema resolution and
/// plan validation happen *here*, by probing every node over empty
/// inputs — the returned executor only then streams batches on demand.
pub fn build_cursor<'a>(
    plan: &LogicalPlan,
    catalog: &'a Catalog,
    doc: Option<&'a Document>,
    config: &CursorConfig,
) -> Result<StreamExec<'a>, EvalError> {
    let mut b = Builder {
        catalog,
        doc,
        cfg: config.clone(),
        residency: Rc::new(Residency::default()),
        ops: Vec::new(),
    };
    let root = b.build(plan)?;
    Ok(StreamExec {
        root,
        residency: b.residency,
        ops: b.ops,
        batch_size: config.batch_size.max(1),
        opened: false,
    })
}

struct Builder<'a> {
    catalog: &'a Catalog,
    doc: Option<&'a Document>,
    cfg: CursorConfig,
    residency: Rc<Residency>,
    ops: Vec<OpStats>,
}

impl<'a> Builder<'a> {
    fn mon(&mut self, plan: &LogicalPlan) -> Mon {
        let cells = if self.cfg.profiling {
            let c = Rc::new(OpCells::default());
            self.ops.push(OpStats {
                label: plan.node_label(),
                breaker: is_pipeline_breaker(plan),
                cells: Rc::clone(&c),
            });
            Some(c)
        } else {
            None
        };
        Mon {
            residency: Rc::clone(&self.residency),
            cells,
            outstanding: Cell::new(0),
        }
    }

    fn batch(&self) -> usize {
        self.cfg.batch_size.max(1)
    }

    /// Schema (and eager validation) of a one-level plan, probed over
    /// empty stand-in inputs.
    fn probe(&self, one_level: &LogicalPlan, ins: &[(&str, &Schema)]) -> Result<Schema, EvalError> {
        let mut cat = Catalog::new();
        for (n, s) in ins {
            cat.insert(*n, Relation::empty((*s).clone()));
        }
        let ev = Evaluator {
            catalog: &cat,
            doc: self.doc,
            config: self.cfg.eval,
            metrics: None,
        };
        Ok(ev.eval(one_level)?.schema)
    }

    fn build(&mut self, plan: &LogicalPlan) -> Result<Box<dyn Cursor + 'a>, EvalError> {
        use LogicalPlan::*;
        match plan {
            Scan { relation } => {
                let rel = self
                    .catalog
                    .get(relation)
                    .ok_or_else(|| EvalError::UnknownRelation(relation.clone()))?;
                let mon = self.mon(plan);
                Ok(Box::new(ScanCursor {
                    rel,
                    pos: 0,
                    batch: self.batch(),
                    mon,
                    closed: false,
                }))
            }
            Sort { input, by } => {
                // Sort elision over a declared order: a stable sort of
                // input already sorted on the (single) key is the
                // identity, so stream the scan through untouched.
                if by.len() == 1 {
                    if let Scan { relation } = input.as_ref() {
                        if let Some(ord) = self.catalog.declared_order(relation) {
                            if ord.satisfies(&by[0]) {
                                tracing::debug!(
                                    target: "uload::cursor",
                                    "Sort({}) elided: declared order of `{relation}` satisfies it",
                                    by[0].as_str()
                                );
                                return self.build(input);
                            }
                        }
                    }
                }
                self.breaker(plan)
            }
            Project { distinct: true, .. } | GroupBy { .. } | NestAll { .. } => self.breaker(plan),
            Union { .. } => {
                let mon = self.mon(plan);
                let kids = plan.child_plans();
                let left = self.build(kids[0])?;
                let right = self.build(kids[1])?;
                let one_level =
                    plan.with_child_plans(vec![LogicalPlan::scan("__l"), LogicalPlan::scan("__r")]);
                // probe for the arity check the oracle applies
                self.probe(
                    &one_level,
                    &[("__l", left.schema()), ("__r", right.schema())],
                )?;
                Ok(Box::new(UnionCursor {
                    left,
                    right,
                    on_right: false,
                    mon,
                    closed: false,
                }))
            }
            TwigJoin { root, steps } => self.twig(plan, root, steps),
            Product { .. } | Join { .. } | StructJoin { .. } | Difference { .. } => {
                self.binary(plan)
            }
            Select { .. }
            | Project { .. }
            | Unnest { .. }
            | XmlTemplate { .. }
            | Navigate { .. }
            | Fetch { .. }
            | DeriveAncestorId { .. }
            | Rename { .. }
            | CastSchema { .. } => self.unary(plan),
        }
    }

    fn unary(&mut self, plan: &LogicalPlan) -> Result<Box<dyn Cursor + 'a>, EvalError> {
        let mon = self.mon(plan);
        let kids = plan.child_plans();
        debug_assert_eq!(kids.len(), 1);
        let child = self.build(kids[0])?;
        let one_level = plan.with_child_plans(vec![LogicalPlan::scan("__in")]);
        let schema = self.probe(&one_level, &[("__in", child.schema())])?;
        let in_schema = child.schema().clone();
        Ok(Box::new(MapCursor {
            child,
            in_schema,
            one_level,
            schema,
            batch: self.batch(),
            spill: Spill::default(),
            doc: self.doc,
            eval: self.cfg.eval,
            mon,
            closed: false,
        }))
    }

    fn binary(&mut self, plan: &LogicalPlan) -> Result<Box<dyn Cursor + 'a>, EvalError> {
        let mon = self.mon(plan);
        let kids = plan.child_plans();
        debug_assert_eq!(kids.len(), 2);
        let left = self.build(kids[0])?;
        let right = self.build(kids[1])?;
        let one_level =
            plan.with_child_plans(vec![LogicalPlan::scan("__l"), LogicalPlan::scan("__r")]);
        let schema = self.probe(
            &one_level,
            &[("__l", left.schema()), ("__r", right.schema())],
        )?;
        let left_schema = left.schema().clone();
        let mut cat = Catalog::new();
        cat.insert("__r", Relation::empty(right.schema().clone()));
        Ok(Box::new(BinaryCursor {
            left,
            right: Some(right),
            right_rows: 0,
            cat,
            one_level,
            schema,
            left_schema,
            batch: self.batch(),
            spill: Spill::default(),
            doc: self.doc,
            eval: self.cfg.eval,
            mon,
            closed: false,
        }))
    }

    fn breaker(&mut self, plan: &LogicalPlan) -> Result<Box<dyn Cursor + 'a>, EvalError> {
        let mon = self.mon(plan);
        let kids = plan.child_plans();
        debug_assert_eq!(kids.len(), 1);
        let child = self.build(kids[0])?;
        let one_level = plan.with_child_plans(vec![LogicalPlan::scan("__in")]);
        let schema = self.probe(&one_level, &[("__in", child.schema())])?;
        let in_schema = child.schema().clone();
        Ok(Box::new(BreakerCursor {
            child,
            in_schema,
            one_level,
            schema,
            out: Vec::new(),
            pos: 0,
            materialized: false,
            batch: self.batch(),
            doc: self.doc,
            eval: self.cfg.eval,
            mon,
            closed: false,
        }))
    }

    fn twig(
        &mut self,
        plan: &LogicalPlan,
        root: &LogicalPlan,
        steps: &[TwigStep],
    ) -> Result<Box<dyn Cursor + 'a>, EvalError> {
        if steps.is_empty() {
            return self.build(root);
        }
        let mon = self.mon(plan);
        let mut children = Vec::with_capacity(steps.len() + 1);
        children.push(self.build(root)?);
        for s in steps {
            children.push(self.build(&s.input)?);
        }
        let schemas: Vec<&Schema> = children.iter().map(|c| c.schema()).collect();
        let shape = if self.cfg.eval.use_twigstack {
            twig_shape(&schemas, steps)
        } else {
            None
        };
        let names: Vec<String> = (0..children.len()).map(|k| format!("__t{k}")).collect();
        let one_level =
            plan.with_child_plans(names.iter().map(|n| LogicalPlan::scan(n.clone())).collect());
        let schema = match &shape {
            Some(s) => s.schema.clone(),
            None => {
                // the one-shot fallback path re-enters `eval`, which
                // detects the uncovered shape itself and cascades
                let ins: Vec<(&str, &Schema)> = names
                    .iter()
                    .map(|n| n.as_str())
                    .zip(schemas.iter().copied())
                    .collect();
                self.probe(&one_level, &ins)?
            }
        };
        Ok(Box::new(TwigCursor {
            children,
            steps: steps.to_vec(),
            shape,
            names,
            one_level,
            schema,
            state: TwigState::Start,
            batch: self.batch(),
            doc: self.doc,
            eval: self.cfg.eval,
            hint: self.cfg.arm_hint.clone(),
            mon,
            closed: false,
        }))
    }
}

// ----------------------------------------------------------------------
// cursor implementations

/// Source: batches cloned off a catalog relation.
struct ScanCursor<'a> {
    rel: &'a Relation,
    pos: usize,
    batch: usize,
    mon: Mon,
    closed: bool,
}

impl Cursor for ScanCursor<'_> {
    fn schema(&self) -> &Schema {
        &self.rel.schema
    }

    fn open(&mut self) -> Result<(), EvalError> {
        Ok(())
    }

    fn next_batch(&mut self) -> Result<Option<TupleBatch>, EvalError> {
        if self.closed {
            return Ok(None);
        }
        self.mon.begin_pull();
        if self.pos >= self.rel.tuples.len() {
            return Ok(None);
        }
        let hi = (self.pos + self.batch).min(self.rel.tuples.len());
        let tuples = self.rel.tuples[self.pos..hi].to_vec();
        self.pos = hi;
        Ok(Some(self.mon.emit(tuples)))
    }

    fn close(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        self.mon.finish();
    }
}

/// Bounded-output staging shared by the streaming cursors: a per-batch
/// evaluation can produce more than `batch_size` rows (joins multiply),
/// so the surplus is held here — accounted on the residency gauge — and
/// emitted one bounded batch at a time. Without this, a single fat
/// input batch would ride through the whole pipeline as one giant
/// batch, defeating the executor's memory bound.
#[derive(Default)]
struct Spill {
    out: Vec<Tuple>,
    pos: usize,
}

impl Spill {
    fn is_empty(&self) -> bool {
        self.pos >= self.out.len()
    }

    /// Park an oversized evaluation output; every row counts as resident
    /// until emitted (or cleared on close).
    fn stage(&mut self, mon: &Mon, tuples: Vec<Tuple>) {
        debug_assert!(self.is_empty());
        mon.residency.alloc(tuples.len());
        self.out = tuples;
        self.pos = 0;
    }

    /// Emit the next bounded batch from the parked rows.
    fn emit_next(&mut self, mon: &Mon, batch: usize) -> TupleBatch {
        let hi = (self.pos + batch.max(1)).min(self.out.len());
        let tuples = self.out[self.pos..hi].to_vec();
        mon.residency.free(tuples.len());
        self.pos = hi;
        if self.is_empty() {
            self.out = Vec::new();
            self.pos = 0;
        }
        mon.emit(tuples)
    }

    fn clear(&mut self, mon: &Mon) {
        mon.residency.free(self.out.len() - self.pos);
        self.out = Vec::new();
        self.pos = 0;
    }
}

/// Streaming unary operator: each child batch runs through the node as
/// a one-level plan over a shadow catalog (`__in` = the batch); output
/// larger than one batch drains through the [`Spill`].
struct MapCursor<'a> {
    child: Box<dyn Cursor + 'a>,
    in_schema: Schema,
    one_level: LogicalPlan,
    schema: Schema,
    batch: usize,
    spill: Spill,
    doc: Option<&'a Document>,
    eval: EvalConfig,
    mon: Mon,
    closed: bool,
}

impl Cursor for MapCursor<'_> {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) -> Result<(), EvalError> {
        self.child.open()
    }

    fn next_batch(&mut self) -> Result<Option<TupleBatch>, EvalError> {
        if self.closed {
            return Ok(None);
        }
        self.mon.begin_pull();
        if !self.spill.is_empty() {
            return Ok(Some(self.spill.emit_next(&self.mon, self.batch)));
        }
        loop {
            let Some(batch) = self.child.next_batch()? else {
                return Ok(None);
            };
            let mut cat = Catalog::new();
            cat.insert("__in", Relation::new(self.in_schema.clone(), batch.tuples));
            let ev = Evaluator {
                catalog: &cat,
                doc: self.doc,
                config: self.eval,
                metrics: self.mon.metrics_slot(),
            };
            let out = ev.eval(&self.one_level)?;
            if let Some(m) = ev.metrics {
                self.mon.absorb(m.into_inner());
            }
            // a filtered-empty batch is not end-of-stream: keep pulling
            if !out.tuples.is_empty() {
                self.spill.stage(&self.mon, out.tuples);
                return Ok(Some(self.spill.emit_next(&self.mon, self.batch)));
            }
        }
    }

    fn close(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        self.child.close();
        self.spill.clear(&self.mon);
        self.mon.finish();
    }
}

/// Build–probe binary operator: the right side is drained into the
/// shadow catalog once (`__r`, resident until close), then every left
/// batch probes it as `__l`, oversized probe output draining through
/// the [`Spill`]. Correct for every operator whose output is a
/// per-left-tuple function of the whole right side.
struct BinaryCursor<'a> {
    left: Box<dyn Cursor + 'a>,
    right: Option<Box<dyn Cursor + 'a>>,
    right_rows: usize,
    cat: Catalog,
    one_level: LogicalPlan,
    schema: Schema,
    left_schema: Schema,
    batch: usize,
    spill: Spill,
    doc: Option<&'a Document>,
    eval: EvalConfig,
    mon: Mon,
    closed: bool,
}

impl Cursor for BinaryCursor<'_> {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) -> Result<(), EvalError> {
        self.left.open()?;
        if let Some(r) = &mut self.right {
            r.open()?;
        }
        Ok(())
    }

    fn next_batch(&mut self) -> Result<Option<TupleBatch>, EvalError> {
        if self.closed {
            return Ok(None);
        }
        self.mon.begin_pull();
        if !self.spill.is_empty() {
            return Ok(Some(self.spill.emit_next(&self.mon, self.batch)));
        }
        if let Some(mut r) = self.right.take() {
            let mut tuples = Vec::new();
            while let Some(b) = r.next_batch()? {
                tuples.extend(b.tuples);
            }
            let rs = r.schema().clone();
            r.close();
            self.right_rows = tuples.len();
            self.mon.residency.alloc(tuples.len());
            self.cat.insert("__r", Relation::new(rs, tuples));
        }
        loop {
            let Some(batch) = self.left.next_batch()? else {
                return Ok(None);
            };
            self.cat
                .insert("__l", Relation::new(self.left_schema.clone(), batch.tuples));
            let ev = Evaluator {
                catalog: &self.cat,
                doc: self.doc,
                config: self.eval,
                metrics: self.mon.metrics_slot(),
            };
            let out = ev.eval(&self.one_level)?;
            if let Some(m) = ev.metrics {
                self.mon.absorb(m.into_inner());
            }
            if !out.tuples.is_empty() {
                self.spill.stage(&self.mon, out.tuples);
                return Ok(Some(self.spill.emit_next(&self.mon, self.batch)));
            }
        }
    }

    fn close(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        self.left.close();
        if let Some(r) = &mut self.right {
            r.close();
        }
        self.mon.residency.free(self.right_rows);
        self.right_rows = 0;
        self.spill.clear(&self.mon);
        self.mon.finish();
    }
}

/// Pass-through duplicate-preserving union: left to exhaustion, then
/// right.
struct UnionCursor<'a> {
    left: Box<dyn Cursor + 'a>,
    right: Box<dyn Cursor + 'a>,
    on_right: bool,
    mon: Mon,
    closed: bool,
}

impl Cursor for UnionCursor<'_> {
    fn schema(&self) -> &Schema {
        self.left.schema()
    }

    fn open(&mut self) -> Result<(), EvalError> {
        self.left.open()?;
        self.right.open()
    }

    fn next_batch(&mut self) -> Result<Option<TupleBatch>, EvalError> {
        if self.closed {
            return Ok(None);
        }
        self.mon.begin_pull();
        if !self.on_right {
            if let Some(b) = self.left.next_batch()? {
                return Ok(Some(self.mon.emit(b.tuples)));
            }
            self.on_right = true;
            self.left.close();
        }
        match self.right.next_batch()? {
            Some(b) => Ok(Some(self.mon.emit(b.tuples))),
            None => Ok(None),
        }
    }

    fn close(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        self.left.close();
        self.right.close();
        self.mon.finish();
    }
}

/// Pipeline breaker: materialize the input, evaluate the node once,
/// stream the buffered result out batch by batch.
struct BreakerCursor<'a> {
    child: Box<dyn Cursor + 'a>,
    in_schema: Schema,
    one_level: LogicalPlan,
    schema: Schema,
    out: Vec<Tuple>,
    pos: usize,
    materialized: bool,
    batch: usize,
    doc: Option<&'a Document>,
    eval: EvalConfig,
    mon: Mon,
    closed: bool,
}

impl Cursor for BreakerCursor<'_> {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) -> Result<(), EvalError> {
        self.child.open()
    }

    fn next_batch(&mut self) -> Result<Option<TupleBatch>, EvalError> {
        if self.closed {
            return Ok(None);
        }
        self.mon.begin_pull();
        if !self.materialized {
            self.materialized = true;
            let mut tuples = Vec::new();
            while let Some(b) = self.child.next_batch()? {
                self.mon.residency.alloc(b.len());
                tuples.extend(b.tuples);
            }
            let n_in = tuples.len();
            self.child.close();
            let mut cat = Catalog::new();
            cat.insert("__in", Relation::new(self.in_schema.clone(), tuples));
            let ev = Evaluator {
                catalog: &cat,
                doc: self.doc,
                config: self.eval,
                metrics: self.mon.metrics_slot(),
            };
            let out = ev.eval(&self.one_level)?;
            if let Some(m) = ev.metrics {
                self.mon.absorb(m.into_inner());
            }
            self.mon.residency.free(n_in);
            self.mon.residency.alloc(out.tuples.len());
            self.out = out.tuples;
        }
        if self.pos >= self.out.len() {
            return Ok(None);
        }
        let hi = (self.pos + self.batch).min(self.out.len());
        let tuples = self.out[self.pos..hi].to_vec();
        self.mon.residency.free(tuples.len());
        self.pos = hi;
        Ok(Some(self.mon.emit(tuples)))
    }

    fn close(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        self.child.close();
        if self.materialized {
            self.mon.residency.free(self.out.len() - self.pos);
        }
        self.out = Vec::new();
        self.pos = 0;
        self.mon.finish();
    }
}

enum TwigState {
    Start,
    /// Holistic: inputs resident, solutions enumerated, assembling
    /// output tuples batch by batch.
    Stream {
        rels: Vec<Relation>,
        solutions: Vec<Vec<usize>>,
        pos: usize,
        resident: usize,
    },
    /// Uncovered shape: the one-shot cascade result, draining.
    Drain {
        out: Vec<Tuple>,
        pos: usize,
    },
    Done,
}

/// Holistic twig join: drains its inputs (base ID streams in fused
/// plans), runs the multi-way merge once, then assembles one output
/// tuple per solution lazily — solutions are index vectors, so the
/// concatenated tuples never sit in memory all at once.
struct TwigCursor<'a> {
    children: Vec<Box<dyn Cursor + 'a>>,
    steps: Vec<TwigStep>,
    shape: Option<TwigShape>,
    names: Vec<String>,
    one_level: LogicalPlan,
    schema: Schema,
    state: TwigState,
    batch: usize,
    doc: Option<&'a Document>,
    eval: EvalConfig,
    hint: Option<ArmSwitchHint>,
    mon: Mon,
    closed: bool,
}

impl Cursor for TwigCursor<'_> {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) -> Result<(), EvalError> {
        for c in &mut self.children {
            c.open()?;
        }
        Ok(())
    }

    fn next_batch(&mut self) -> Result<Option<TupleBatch>, EvalError> {
        if self.closed {
            return Ok(None);
        }
        self.mon.begin_pull();
        if matches!(self.state, TwigState::Start) {
            let mut rels = Vec::with_capacity(self.children.len());
            let mut resident = 0usize;
            for c in &mut self.children {
                let mut tuples = Vec::new();
                while let Some(b) = c.next_batch()? {
                    resident += b.len();
                    self.mon.residency.alloc(b.len());
                    tuples.extend(b.tuples);
                }
                let schema = c.schema().clone();
                c.close();
                rels.push(Relation::new(schema, tuples));
            }
            // Mid-query arm check: the leaf streams are fully drained, so
            // their real combined cardinality is known before the merge
            // has run. If a hint is attached (the store flagged this
            // plan's arm choice before) and the observation contradicts
            // the estimate the merge was priced on, fall over to the
            // cascade arm below — same answers, honestly-priced path —
            // and record the outcome.
            let fall_over = match (&self.shape, &self.hint) {
                (Some(_), Some(h)) if h.should_switch(resident as f64) => {
                    h.stats.record_arm_switch(h.doc_version, h.plan_fp, false);
                    tracing::debug!(
                        target: "uload::cost",
                        "twig arm fell over to cascade mid-query: observed {} leaf rows vs est {:.0}",
                        resident,
                        h.est_leaf_rows
                    );
                    true
                }
                _ => false,
            };
            self.state = match &self.shape {
                Some(shape) if !fall_over => {
                    let slot = self.mon.metrics_slot();
                    let solutions =
                        twig_solutions(&rels, shape, &self.steps, self.eval, slot.as_ref());
                    if let Some(s) = slot {
                        self.mon.absorb(s.into_inner());
                    }
                    TwigState::Stream {
                        rels,
                        solutions,
                        pos: 0,
                        resident,
                    }
                }
                _ => {
                    let mut cat = Catalog::new();
                    for (n, r) in self.names.iter().zip(rels) {
                        cat.insert(n.clone(), r);
                    }
                    // on a fallover the shape *is* covered, so the
                    // one-shot evaluation must have the holistic knob
                    // off or it would just run the twig arm again
                    let mut eval_cfg = self.eval;
                    if fall_over {
                        eval_cfg.use_twigstack = false;
                    }
                    let ev = Evaluator {
                        catalog: &cat,
                        doc: self.doc,
                        config: eval_cfg,
                        metrics: self.mon.metrics_slot(),
                    };
                    let out = ev.eval(&self.one_level)?;
                    if let Some(m) = ev.metrics {
                        self.mon.absorb(m.into_inner());
                    }
                    self.mon.residency.free(resident);
                    self.mon.residency.alloc(out.tuples.len());
                    TwigState::Drain {
                        out: out.tuples,
                        pos: 0,
                    }
                }
            };
        }
        match &mut self.state {
            TwigState::Stream {
                rels,
                solutions,
                pos,
                resident,
            } => {
                if *pos >= solutions.len() {
                    self.mon.residency.free(*resident);
                    *resident = 0;
                    self.state = TwigState::Done;
                    return Ok(None);
                }
                let hi = (*pos + self.batch).min(solutions.len());
                let mut tuples = Vec::with_capacity(hi - *pos);
                for sol in &solutions[*pos..hi] {
                    let mut t = rels[0].tuples[sol[0]].clone();
                    for (j, &i) in sol.iter().enumerate().skip(1) {
                        t = t.concat(&rels[j].tuples[i]);
                    }
                    tuples.push(t);
                }
                *pos = hi;
                Ok(Some(self.mon.emit(tuples)))
            }
            TwigState::Drain { out, pos } => {
                if *pos >= out.len() {
                    self.state = TwigState::Done;
                    return Ok(None);
                }
                let hi = (*pos + self.batch).min(out.len());
                let tuples = out[*pos..hi].to_vec();
                self.mon.residency.free(tuples.len());
                *pos = hi;
                Ok(Some(self.mon.emit(tuples)))
            }
            TwigState::Done => Ok(None),
            TwigState::Start => unreachable!("materialized above"),
        }
    }

    fn close(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        for c in &mut self.children {
            c.close();
        }
        match std::mem::replace(&mut self.state, TwigState::Done) {
            TwigState::Stream { resident, .. } => self.mon.residency.free(resident),
            TwigState::Drain { out, pos } => self.mon.residency.free(out.len() - pos),
            _ => {}
        }
        self.mon.finish();
    }
}

// ----------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{tag_derived, tag_derived_attr};
    use crate::plan::{Axis, CmpOp, JoinKind, Predicate};
    use crate::value::Value;
    use crate::OrderSpec;
    use xmltree::generate::bib_sample;
    use xmltree::Document;

    fn setup() -> (Document, Catalog) {
        let doc = bib_sample();
        let mut cat = Catalog::new();
        for l in ["library", "book", "phdthesis", "title", "author"] {
            cat.insert_ordered(l, tag_derived(&doc, l), OrderSpec::by("ID"));
        }
        cat.insert("year_attr", tag_derived_attr(&doc, "year"));
        (doc, cat)
    }

    /// Drain `plan` through the pipelined executor at several batch
    /// sizes and require byte-identical results to the oracle.
    fn assert_streams(plan: &LogicalPlan, cat: &Catalog, doc: Option<&Document>) {
        let ev = Evaluator {
            catalog: cat,
            doc,
            config: EvalConfig::default(),
            metrics: None,
        };
        let oracle = ev.eval(plan).unwrap();
        for bs in [1usize, 2, 3, 7, 1024] {
            let cfg = CursorConfig {
                batch_size: bs,
                ..Default::default()
            };
            let exec = build_cursor(plan, cat, doc, &cfg).unwrap();
            let got = exec.collect().unwrap();
            assert_eq!(got, oracle, "batch_size={bs} plan={plan}");
        }
    }

    #[test]
    fn scan_select_project_stream_like_the_oracle() {
        let (doc, cat) = setup();
        assert_streams(&LogicalPlan::scan("book"), &cat, Some(&doc));
        assert_streams(
            &LogicalPlan::scan("title").select(Predicate::eq("Val", Value::str("Data on the Web"))),
            &cat,
            Some(&doc),
        );
        assert_streams(
            &LogicalPlan::scan("title").project(&["ID", "Val"]),
            &cat,
            Some(&doc),
        );
    }

    #[test]
    fn binary_operators_stream_like_the_oracle() {
        let (doc, cat) = setup();
        let books = LogicalPlan::scan("book");
        let titles = LogicalPlan::scan("title");
        assert_streams(&books.clone().product(titles.clone()), &cat, Some(&doc));
        for kind in [
            JoinKind::Inner,
            JoinKind::Semi,
            JoinKind::LeftOuter,
            JoinKind::Nest,
            JoinKind::NestOuter,
        ] {
            let p = books
                .clone()
                .struct_join(titles.clone(), "ID", "ID", Axis::Child, kind);
            assert_streams(&p, &cat, Some(&doc));
        }
        let rtitles = LogicalPlan::scan("title")
            .project(&["ID", "Val"])
            .rename(&["tid", "tval"]);
        for kind in [JoinKind::Inner, JoinKind::Semi, JoinKind::LeftOuter] {
            assert_streams(
                &books.clone().join(
                    rtitles.clone(),
                    Predicate::col_cmp("Val", CmpOp::Eq, "tval"),
                    kind,
                ),
                &cat,
                Some(&doc),
            );
        }
        assert_streams(&titles.clone().union(titles.clone()), &cat, Some(&doc));
        assert_streams(
            &titles.clone().difference(
                titles
                    .clone()
                    .select(Predicate::eq("Val", Value::str("Data on the Web"))),
            ),
            &cat,
            Some(&doc),
        );
    }

    #[test]
    fn breakers_stream_like_the_oracle() {
        let (doc, cat) = setup();
        let titles = LogicalPlan::scan("title");
        assert_streams(
            &titles
                .clone()
                .union(titles.clone())
                .project_distinct(&["Val"]),
            &cat,
            Some(&doc),
        );
        assert_streams(
            &LogicalPlan::GroupBy {
                input: Box::new(LogicalPlan::scan("author")),
                keys: vec!["Val".into()],
                nest_as: "occ".into(),
            },
            &cat,
            Some(&doc),
        );
        assert_streams(&titles.clone().sort(&["Val"]), &cat, Some(&doc));
        assert_streams(
            &LogicalPlan::NestAll {
                input: Box::new(titles.clone()),
                as_name: "all".into(),
            },
            &cat,
            Some(&doc),
        );
        // NestAll over an *empty* input still yields its single tuple
        assert_streams(
            &LogicalPlan::NestAll {
                input: Box::new(titles.select(Predicate::eq("Val", Value::str("no such title")))),
                as_name: "all".into(),
            },
            &cat,
            Some(&doc),
        );
    }

    /// A one-column ID stream with a distinct name, the shape fused
    /// twig plans feed the holistic operator.
    fn id_col(rel: &str, as_name: &str) -> LogicalPlan {
        LogicalPlan::scan(rel).project(&["ID"]).rename(&[as_name])
    }

    #[test]
    fn twig_join_streams_like_the_oracle() {
        let (doc, cat) = setup();
        let plan = id_col("library", "id0").twig_join(vec![
            TwigStep {
                input: id_col("book", "id1"),
                parent_attr: "id0".into(),
                attr: "id1".into(),
                axis: Axis::Descendant,
            },
            TwigStep {
                input: id_col("title", "id2"),
                parent_attr: "id1".into(),
                attr: "id2".into(),
                axis: Axis::Child,
            },
        ]);
        assert_streams(&plan, &cat, Some(&doc));
        // cascade fallback (holistic off) must match too
        let ev = Evaluator {
            catalog: &cat,
            doc: Some(&doc),
            config: EvalConfig::default(),
            metrics: None,
        };
        let oracle = ev.eval(&plan).unwrap();
        let cfg = CursorConfig {
            batch_size: 2,
            eval: EvalConfig {
                use_twigstack: false,
                ..Default::default()
            },
            ..Default::default()
        };
        let got = build_cursor(&plan, &cat, Some(&doc), &cfg)
            .unwrap()
            .collect()
            .unwrap();
        assert_eq!(got, oracle);
    }

    #[test]
    fn arm_hint_falls_over_to_cascade_and_records_the_switch() {
        let (doc, cat) = setup();
        let plan = id_col("library", "id0").twig_join(vec![
            TwigStep {
                input: id_col("book", "id1"),
                parent_attr: "id0".into(),
                attr: "id1".into(),
                axis: Axis::Descendant,
            },
            TwigStep {
                input: id_col("title", "id2"),
                parent_attr: "id1".into(),
                attr: "id2".into(),
                axis: Axis::Child,
            },
        ]);
        let oracle = build_cursor(&plan, &cat, Some(&doc), &CursorConfig::default())
            .unwrap()
            .collect()
            .unwrap();

        // estimate wildly above the real combined leaf cardinality: the
        // cursor must fall over to the cascade arm, produce identical
        // rows, and record exactly one switch in the store
        let stats = Arc::new(StatsStore::new());
        let cfg = CursorConfig {
            arm_hint: Some(ArmSwitchHint {
                stats: Arc::clone(&stats),
                doc_version: 5,
                plan_fp: 0x51,
                est_leaf_rows: 1_000_000.0,
            }),
            ..Default::default()
        };
        let got = build_cursor(&plan, &cat, Some(&doc), &cfg)
            .unwrap()
            .collect()
            .unwrap();
        assert_eq!(got, oracle, "fallover must not change answers");
        let arm = stats.arm(5, 0x51).expect("switch recorded");
        assert_eq!(arm.switches, 1);
        assert_eq!(arm.mispredicts, 1);

        // an accurate estimate keeps the twig arm and records nothing
        let quiet = Arc::new(StatsStore::new());
        let total: usize = ["library", "book", "title"]
            .iter()
            .map(|n| cat.get(n).unwrap().len())
            .sum();
        let cfg = CursorConfig {
            arm_hint: Some(ArmSwitchHint {
                stats: Arc::clone(&quiet),
                doc_version: 5,
                plan_fp: 0x51,
                est_leaf_rows: total as f64,
            }),
            ..Default::default()
        };
        let got = build_cursor(&plan, &cat, Some(&doc), &cfg)
            .unwrap()
            .collect()
            .unwrap();
        assert_eq!(got, oracle);
        assert!(quiet.arm(5, 0x51).is_none(), "no switch on a sane estimate");
    }

    #[test]
    fn unnest_roundtrip_streams() {
        let (doc, cat) = setup();
        let nested = LogicalPlan::scan("book").struct_nest_join(
            LogicalPlan::scan("title"),
            "ID",
            "ID",
            Axis::Child,
            false,
            "ts",
        );
        let plan = LogicalPlan::Unnest {
            input: Box::new(nested),
            attr: "ts".into(),
        };
        assert_streams(&plan, &cat, Some(&doc));
    }

    #[test]
    fn sort_elision_streams_declared_order() {
        let (doc, cat) = setup();
        let plan = LogicalPlan::scan("book").sort(&["ID"]);
        assert_streams(&plan, &cat, Some(&doc));
        // elided: the whole tree is the scan, so nothing is buffered
        let cfg = CursorConfig {
            batch_size: 1,
            ..Default::default()
        };
        let mut exec = build_cursor(&plan, &cat, Some(&doc), &cfg).unwrap();
        exec.next_batch().unwrap();
        assert_eq!(exec.peak_resident(), 1, "no breaker buffer for the sort");
        // an un-declared order still goes through the breaker
        let by_val = LogicalPlan::scan("book").sort(&["Val"]);
        assert_streams(&by_val, &cat, Some(&doc));
    }

    #[test]
    fn batch_boundaries_around_input_size() {
        let (doc, cat) = setup();
        // relation sizes in the bib sample are small; check ±1 around
        // them and around the default size
        let n = cat.get("author").unwrap().len();
        let plan = LogicalPlan::scan("author").project(&["Val"]);
        for bs in [1, 2, n.saturating_sub(1).max(1), n, n + 1, 1023, 1024, 1025] {
            let cfg = CursorConfig {
                batch_size: bs,
                ..Default::default()
            };
            let exec = build_cursor(&plan, &cat, Some(&doc), &cfg).unwrap();
            let got = exec.collect().unwrap();
            assert_eq!(got.len(), n, "batch_size={bs}");
        }
    }

    #[test]
    fn build_errors_surface_before_streaming() {
        let (doc, cat) = setup();
        assert!(matches!(
            build_cursor(
                &LogicalPlan::scan("nope"),
                &cat,
                Some(&doc),
                &CursorConfig::default()
            )
            .err(),
            Some(EvalError::UnknownRelation(_))
        ));
        let bad = LogicalPlan::scan("book").select(Predicate::eq("Nope", Value::Int(1)));
        assert!(matches!(
            build_cursor(&bad, &cat, Some(&doc), &CursorConfig::default()).err(),
            Some(EvalError::UnknownAttribute(_))
        ));
    }

    /// A child that counts how many times it is pulled — the probe for
    /// the cancellation contract.
    struct Probe<'a> {
        inner: Box<dyn Cursor + 'a>,
        pulls: Rc<Cell<usize>>,
    }

    impl Cursor for Probe<'_> {
        fn schema(&self) -> &Schema {
            self.inner.schema()
        }
        fn open(&mut self) -> Result<(), EvalError> {
            self.inner.open()
        }
        fn next_batch(&mut self) -> Result<Option<TupleBatch>, EvalError> {
            self.pulls.set(self.pulls.get() + 1);
            self.inner.next_batch()
        }
        fn close(&mut self) {
            self.inner.close();
        }
    }

    #[test]
    fn close_cancels_mid_stream_without_pulling_children() {
        let (_doc, cat) = setup();
        let rel = cat.get("author").unwrap();
        let residency = Rc::new(Residency::default());
        let mon = |r: &Rc<Residency>| Mon {
            residency: Rc::clone(r),
            cells: None,
            outstanding: Cell::new(0),
        };
        let pulls = Rc::new(Cell::new(0));
        let scan = ScanCursor {
            rel,
            pos: 0,
            batch: 1,
            mon: mon(&residency),
            closed: false,
        };
        let probe = Probe {
            inner: Box::new(scan),
            pulls: Rc::clone(&pulls),
        };
        let plan = LogicalPlan::scan("__in").select(Predicate::True);
        let mut cur = MapCursor {
            child: Box::new(probe),
            in_schema: rel.schema.clone(),
            one_level: plan,
            schema: rel.schema.clone(),
            batch: 1,
            spill: Spill::default(),
            doc: None,
            eval: EvalConfig::default(),
            mon: mon(&residency),
            closed: false,
        };
        cur.open().unwrap();
        assert!(cur.next_batch().unwrap().is_some());
        let pulled = pulls.get();
        assert!(pulled >= 1);
        cur.close();
        // after close: no more batches, and the child is never pulled
        for _ in 0..3 {
            assert!(cur.next_batch().unwrap().is_none());
        }
        assert_eq!(pulls.get(), pulled, "child pulled after close");
        assert_eq!(residency.current(), 0, "close releases resident tuples");
    }

    #[test]
    fn early_close_keeps_residency_below_materialized_size() {
        let (doc, cat) = setup();
        // a product is quadratic when materialized; pull one batch only
        let plan = LogicalPlan::scan("author").product(LogicalPlan::scan("title"));
        let ev = Evaluator::with_document(&cat, &doc);
        let full = ev.eval(&plan).unwrap().len() as u64;
        let cfg = CursorConfig {
            batch_size: 1,
            ..Default::default()
        };
        let mut exec = build_cursor(&plan, &cat, Some(&doc), &cfg).unwrap();
        assert!(exec.next_batch().unwrap().is_some());
        exec.close();
        assert_eq!(exec.resident_now(), 0);
        assert!(
            exec.peak_resident() < full + cat.get("title").unwrap().len() as u64,
            "peak {} vs full {}",
            exec.peak_resident(),
            full
        );
    }

    #[test]
    fn profiling_counts_batches_rows_and_kernel_work() {
        let (doc, cat) = setup();
        let plan = LogicalPlan::scan("book").struct_join(
            LogicalPlan::scan("title"),
            "ID",
            "ID",
            Axis::Child,
            JoinKind::Inner,
        );
        let cfg = CursorConfig {
            batch_size: 1,
            profiling: true,
            ..Default::default()
        };
        let mut exec = build_cursor(&plan, &cat, Some(&doc), &cfg).unwrap();
        let mut rows = 0u64;
        while let Some(b) = exec.next_batch().unwrap() {
            rows += b.len() as u64;
        }
        let ops = exec.op_stats();
        assert_eq!(ops.len(), 3, "join + two scans");
        assert!(ops[0].label.starts_with("StructJoin"));
        assert_eq!(ops[0].cells.rows.get(), rows);
        assert!(ops[0].cells.batches.get() >= 1);
        assert!(
            ops[0].cells.metrics.borrow().comparisons > 0,
            "metered kernels feed op metrics"
        );
        assert!(!ops[0].breaker);
        assert!(exec.peak_resident() > 0);
    }

    #[test]
    fn breaker_annotation_lists_pre_order_labels() {
        let plan = LogicalPlan::scan("a")
            .union(LogicalPlan::scan("b"))
            .project_distinct(&["x"])
            .sort(&["x"]);
        let labels = pipeline_breakers(&plan);
        assert_eq!(labels.len(), 2);
        assert!(labels[0].starts_with("Sort"));
        assert!(labels[1].starts_with("Project"));
        assert!(is_pipeline_breaker(&plan));
        assert!(!is_pipeline_breaker(&LogicalPlan::scan("a")));
    }
}
