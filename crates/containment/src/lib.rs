//! # containment — XAM containment and minimization under summary constraints
//!
//! Chapter 4 of the paper: deciding `p ⊆_S q` — for every document
//! conforming to the summary `S`, `p`'s result tuples are among `q`'s —
//! via the *canonical model* technique:
//!
//! 1. enumerate the embeddings of `p` into `S`, each inducing a canonical
//!    tree ([`canonical`]);
//! 2. `p ⊆_S q` iff `q` accepts every canonical tree's return tuple
//!    (Proposition 4.4.1, condition 3), evaluated by [`pattern_eval`];
//! 3. decorated patterns add formula implication, optional edges multiply
//!    the model by erasure sets, attribute patterns require identical
//!    stored-attribute annotations (Prop 4.4.3), and nested patterns
//!    require compatible nesting sequences, relaxed across one-to-one
//!    summary edges (Prop 4.4.4);
//! 4. unions add a value-cover condition over canonical-tree formulas
//!    (§4.4.2), decided exactly by region sampling.
//!
//! Negative answers exit as soon as one canonical tree contradicts the
//! condition — the effect the paper measures in §4.6 (negative tests are
//! faster because `mod_S(p)` need not be fully built).

pub mod cache;
pub mod canonical;
pub mod minimize;
pub mod pattern_eval;

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use parking_lot::Mutex;
use summary::{Summary, SummaryNodeId};
use xam_core::ast::{Formula, Xam, XamNodeId};

pub use cache::{CacheStats, CanonicalCache};
pub use canonical::{canonical_model, CanonicalTree, ModelStats};
pub use minimize::{
    minimize_by_contraction, minimize_by_contraction_with, minimize_global, minimize_global_with,
};
pub use pattern_eval::{accepts_tuple, eval_on_canonical};

/// Outcome of a containment decision, with the statistics the experiments
/// of §4.6 report.
#[derive(Debug, Clone, Copy)]
pub struct ContainmentOutcome {
    pub contained: bool,
    /// Canonical trees actually built before the decision (full model for
    /// positive answers, a prefix for negative ones — the early exit).
    pub trees_checked: usize,
    /// `|mod_S(p)|` if fully enumerated (positive answers), else trees seen.
    pub model_size: usize,
}

/// Is `p` satisfiable under `S` — does any conforming document give it a
/// non-empty result? By Proposition 4.3.1 this is `mod_S(p) ≠ ∅`.
pub fn satisfiable(p: &Xam, s: &Summary) -> bool {
    let mut any = false;
    canonical::for_each_embedding(p, s, &mut |_| {
        any = true;
        false // stop at the first embedding
    });
    any
}

/// The stored-attribute signature of return nodes (Prop 4.4.3 cond 1).
fn attr_signature_of(p: &Xam, rets: &[XamNodeId]) -> Vec<(bool, bool, bool, bool)> {
    rets.iter()
        .map(|&n| {
            let node = p.node(n);
            (
                node.stores_id.is_some(),
                node.stores_tag,
                node.stores_val,
                node.stores_cont,
            )
        })
        .collect()
}

fn attr_signature(p: &Xam) -> Vec<(bool, bool, bool, bool)> {
    attr_signature_of(p, &p.return_nodes())
}

/// Knobs of a containment decision — the one options struct behind the
/// unified [`contain`] entry point.
///
/// The default (`ContainOptions::default()`) is the sequential,
/// uncached decision with return nodes taken from each pattern in
/// pre-order — the behaviour of the historical `contained_in` family.
///
/// Configured the same way as every options struct in the workspace
/// (`rewriting::EngineConfig`, `uload_server::ServerConfig`): start
/// from `default()`, chain `with_*` calls.
///
/// ```
/// use containment::{CanonicalCache, ContainOptions};
/// let cache = CanonicalCache::new(256);
/// let opts = ContainOptions::default().with_threads(4).with_cache(&cache);
/// assert_eq!(opts.threads, 4);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct ContainOptions<'a> {
    /// Worker threads for the canonical-model enumeration. `0` and `1`
    /// both mean sequential. Parallelism only changes wall-clock time:
    /// the verdict is identical (the canonical model is a set).
    pub threads: usize,
    /// Shared memo for verdicts/models; `None` disables caching.
    pub cache: Option<&'a CanonicalCache>,
    /// Fingerprint of the summary if the caller amortized it
    /// ([`cache::summary_fingerprint`]); computed on demand otherwise.
    pub summary_fp: Option<u64>,
    /// Explicit, position-aligned return-node lists: `p_rets[i]`
    /// corresponds to `q_rets[i]`. The rewriter uses this to align a
    /// rewriting pattern's outputs (whose pre-order may differ) with
    /// the query's. `None` uses each pattern's own pre-order returns.
    pub aligned: Option<(&'a [XamNodeId], &'a [XamNodeId])>,
}

impl<'a> ContainOptions<'a> {
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    pub fn with_cache(mut self, cache: &'a CanonicalCache) -> Self {
        self.cache = Some(cache);
        self
    }

    pub fn with_summary_fp(mut self, fp: u64) -> Self {
        self.summary_fp = Some(fp);
        self
    }

    pub fn with_aligned(mut self, p_rets: &'a [XamNodeId], q_rets: &'a [XamNodeId]) -> Self {
        self.aligned = Some((p_rets, q_rets));
        self
    }
}

/// Decide `p ⊆_S q` (full pattern language). This is the single
/// containment entry point; threading, caching and return-node
/// alignment are selected through [`ContainOptions`].
pub fn contain(p: &Xam, q: &Xam, s: &Summary, opts: &ContainOptions) -> ContainmentOutcome {
    let (own_p, own_q);
    let (p_rets, q_rets): (&[XamNodeId], &[XamNodeId]) = match opts.aligned {
        Some((pr, qr)) => (pr, qr),
        None => {
            own_p = p.return_nodes();
            own_q = q.return_nodes();
            (&own_p, &own_q)
        }
    };
    if let Some(cache) = opts.cache {
        let s_fp = opts
            .summary_fp
            .unwrap_or_else(|| cache::summary_fingerprint(s));
        let key = (
            cache::pattern_fingerprint(p),
            cache::rets_fingerprint(p_rets),
            cache::pattern_fingerprint(q),
            cache::rets_fingerprint(q_rets),
            s_fp,
        );
        if let Some(hit) = cache.get_verdict(key.0, key.1, key.2, key.3, key.4) {
            tracing::trace!(
                target: "uload::containment",
                "verdict cache hit: contained={} (model of {} trees)",
                hit.contained,
                hit.model_size
            );
            return hit;
        }
        let outcome = decide(p, q, s, p_rets, q_rets, opts.threads);
        tracing::debug!(
            target: "uload::containment",
            "decided p ⊆ q: contained={} after {}/{} canonical trees",
            outcome.contained,
            outcome.trees_checked,
            outcome.model_size
        );
        cache.put_verdict(key.0, key.1, key.2, key.3, key.4, outcome);
        outcome
    } else {
        let outcome = decide(p, q, s, p_rets, q_rets, opts.threads);
        tracing::trace!(
            target: "uload::containment",
            "decided p ⊆ q (uncached): contained={} after {}/{} canonical trees",
            outcome.contained,
            outcome.trees_checked,
            outcome.model_size
        );
        outcome
    }
}

fn decide(
    p: &Xam,
    q: &Xam,
    s: &Summary,
    p_rets: &[XamNodeId],
    q_rets: &[XamNodeId],
    threads: usize,
) -> ContainmentOutcome {
    // 1. attribute signatures must agree position-wise (Prop 4.4.3)
    if attr_signature_of(p, p_rets) != attr_signature_of(q, q_rets) {
        return ContainmentOutcome {
            contained: false,
            trees_checked: 0,
            model_size: 0,
        };
    }
    // 2. nested-pattern conditions (Prop 4.4.4)
    let p_has_nesting = p.pattern_nodes().any(|n| p.node(n).edge.sem.is_nested());
    let q_has_nesting = q.pattern_nodes().any(|n| q.node(n).edge.sem.is_nested());
    if (p_has_nesting || q_has_nesting) && !nesting_compatible(p, q, s, p_rets, q_rets) {
        return ContainmentOutcome {
            contained: false,
            trees_checked: 0,
            model_size: 0,
        };
    }
    // 3. canonical-model check with early exit
    let roots = canonical::root_candidates(p, s);
    if threads > 1 && roots.len() > 1 {
        canonical_check_parallel(p, q, s, p_rets, q_rets, &roots, threads)
    } else {
        canonical_check_seq(p, q, s, p_rets, q_rets)
    }
}

fn canonical_check_seq(
    p: &Xam,
    q: &Xam,
    s: &Summary,
    p_rets: &[XamNodeId],
    q_rets: &[XamNodeId],
) -> ContainmentOutcome {
    let erasures = canonical::erasure_sets(p);
    let mut seen: HashSet<u64> = HashSet::new();
    let mut checked = 0usize;
    let mut ok = true;
    canonical::for_each_embedding(p, s, &mut |e| {
        for f in &erasures {
            let t = canonical::canonical_tree_with_rets(p, s, e, f, p_rets);
            if seen.contains(&t.key()) {
                continue;
            }
            // §4.3.2: erased trees join the model only if `p` still
            // produces the ⊥-padded tuple on them
            if !f.is_empty()
                && !pattern_eval::accepts_tuple_with_rets(p, s, &t, &t.return_tuple, p_rets)
            {
                continue;
            }
            seen.insert(t.key());
            checked += 1;
            if !pattern_eval::accepts_tuple_with_rets(q, s, &t, &t.return_tuple, q_rets) {
                ok = false;
                return false; // early exit
            }
        }
        true
    });
    ContainmentOutcome {
        contained: ok,
        trees_checked: checked,
        model_size: seen.len(),
    }
}

/// The parallel canonical-model check: the first pattern node's summary
/// candidates are dealt round-robin to `threads` scoped workers, each of
/// which enumerates the embeddings rooted at its share. Duplicate trees
/// are eliminated through a shared key set, so exactly one worker checks
/// each distinct canonical tree; a shared flag broadcasts the early exit
/// on a negative answer. The verdict — and, for positive answers, the
/// model size — is bit-identical to the sequential check, because both
/// compute the same duplicate-free set of accepted canonical trees.
fn canonical_check_parallel(
    p: &Xam,
    q: &Xam,
    s: &Summary,
    p_rets: &[XamNodeId],
    q_rets: &[XamNodeId],
    roots: &[SummaryNodeId],
    threads: usize,
) -> ContainmentOutcome {
    let erasures = canonical::erasure_sets(p);
    let failed = AtomicBool::new(false);
    let seen: Mutex<HashSet<u64>> = Mutex::new(HashSet::new());
    let checked = AtomicUsize::new(0);
    let workers = threads.min(roots.len());
    crossbeam::thread::scope(|scope| {
        for w in 0..workers {
            let my: Vec<SummaryNodeId> = roots.iter().copied().skip(w).step_by(workers).collect();
            let (failed, seen, checked, erasures) = (&failed, &seen, &checked, &erasures);
            scope.spawn(move || {
                for first in my {
                    if failed.load(Ordering::Relaxed) {
                        return;
                    }
                    canonical::for_each_embedding_from(p, s, first, &mut |e| {
                        if failed.load(Ordering::Relaxed) {
                            return false;
                        }
                        for f in erasures.iter() {
                            let t = canonical::canonical_tree_with_rets(p, s, e, f, p_rets);
                            let key = t.key();
                            if seen.lock().contains(&key) {
                                continue;
                            }
                            if !f.is_empty()
                                && !pattern_eval::accepts_tuple_with_rets(
                                    p,
                                    s,
                                    &t,
                                    &t.return_tuple,
                                    p_rets,
                                )
                            {
                                continue;
                            }
                            // two workers may race to the same fresh tree:
                            // the one whose insert wins does the check
                            if !seen.lock().insert(key) {
                                continue;
                            }
                            checked.fetch_add(1, Ordering::Relaxed);
                            if !pattern_eval::accepts_tuple_with_rets(
                                q,
                                s,
                                &t,
                                &t.return_tuple,
                                q_rets,
                            ) {
                                failed.store(true, Ordering::Relaxed);
                                return false;
                            }
                        }
                        true
                    });
                }
            });
        }
    });
    let model_size = seen.into_inner().len();
    ContainmentOutcome {
        contained: !failed.load(Ordering::Relaxed),
        trees_checked: checked.load(Ordering::Relaxed),
        model_size,
    }
}

/// `S`-equivalence: two-way containment (Definition 4.4.1).
pub fn equivalent(p: &Xam, q: &Xam, s: &Summary) -> bool {
    equivalent_with(p, q, s, &ContainOptions::default())
}

/// [`equivalent`] under explicit [`ContainOptions`] (shared cache,
/// worker threads).
pub fn equivalent_with(p: &Xam, q: &Xam, s: &Summary, opts: &ContainOptions) -> bool {
    contain(p, q, s, opts).contained && contain(q, p, s, opts).contained
}

// --------------------------------------------------------------------
// nested patterns (Proposition 4.4.4)

/// The nesting sequence of return node `r` under embedding `e`: summary
/// images of ancestors whose downward edge (toward `r`) is nested.
fn nesting_sequence(p: &Xam, e: &canonical::SummaryEmbedding, r: XamNodeId) -> Vec<SummaryNodeId> {
    let mut seq = Vec::new();
    let mut cur = r;
    while let Some(par) = p.parent(cur) {
        if p.node(cur).edge.sem.is_nested() && par != XamNodeId::TOP {
            if let Some(sn) = e[par.index()] {
                seq.push(sn);
            }
        }
        cur = par;
    }
    seq.reverse();
    seq
}

/// Are two nesting sequences equal, or connected exclusively by
/// one-to-one summary edges (the relaxation at the end of §4.4.5)?
fn sequences_compatible(s: &Summary, a: &[SummaryNodeId], b: &[SummaryNodeId]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    a.iter().zip(b).all(|(&x, &y)| {
        x == y
            || (s.is_ancestor_or_self(x, y) && s.one_to_one_chain(x, y))
            || (s.is_ancestor_or_self(y, x) && s.one_to_one_chain(y, x))
    })
}

/// Conditions 2(a)/2(b) of Proposition 4.4.4.
fn nesting_compatible(
    p: &Xam,
    q: &Xam,
    s: &Summary,
    p_rets: &[XamNodeId],
    q_rets: &[XamNodeId],
) -> bool {
    if p_rets.len() != q_rets.len() {
        return false;
    }
    // 2(a): same nesting depth per position
    for (&pr, &qr) in p_rets.iter().zip(q_rets) {
        if p.nesting_depth(pr) != q.nesting_depth(qr) {
            return false;
        }
    }
    // 2(b): for every embedding of p there is a q embedding with the same
    // return tuple and compatible nesting sequences
    let mut q_by_tuple: HashMap<Vec<Option<SummaryNodeId>>, Vec<Vec<Vec<SummaryNodeId>>>> =
        HashMap::new();
    canonical::for_each_embedding(q, s, &mut |e| {
        let tuple: Vec<Option<SummaryNodeId>> = q_rets.iter().map(|r| e[r.index()]).collect();
        let seqs: Vec<Vec<SummaryNodeId>> =
            q_rets.iter().map(|&r| nesting_sequence(q, e, r)).collect();
        q_by_tuple.entry(tuple).or_default().push(seqs);
        true
    });
    let mut ok = true;
    canonical::for_each_embedding(p, s, &mut |e| {
        let tuple: Vec<Option<SummaryNodeId>> = p_rets.iter().map(|r| e[r.index()]).collect();
        let p_seqs: Vec<Vec<SummaryNodeId>> =
            p_rets.iter().map(|&r| nesting_sequence(p, e, r)).collect();
        let found = q_by_tuple.get(&tuple).is_some_and(|cands| {
            cands.iter().any(|q_seqs| {
                p_seqs
                    .iter()
                    .zip(q_seqs)
                    .all(|(a, b)| sequences_compatible(s, a, b))
            })
        });
        if !found {
            ok = false;
            return false;
        }
        true
    });
    ok
}

// --------------------------------------------------------------------
// unions (Proposition 4.4.2 and the decorated condition of §4.4.2)

/// Decide `p ⊆_S q_1 ∪ … ∪ q_m`.
///
/// Condition 1 (Prop 4.4.2): every canonical tree's return tuple is
/// accepted by some `q_i`. Condition 2 (§4.4.2): the value formulas of
/// each canonical tree of `p` imply the disjunction of the formulas of
/// the matching canonical trees of the accepting `q_i`s — decided exactly
/// by sampling one witness per region of each variable's domain.
pub fn contained_in_union(p: &Xam, qs: &[&Xam], s: &Summary) -> bool {
    if qs.is_empty() {
        return !satisfiable(p, s);
    }
    // attribute signatures
    let sig = attr_signature(p);
    let viable: Vec<&Xam> = qs
        .iter()
        .copied()
        .filter(|q| attr_signature(q) == sig)
        .collect();
    if viable.is_empty() {
        return !satisfiable(p, s);
    }
    // Condition 1 is *structural* (the worked example of §4.4.2 puts
    // p_φ1 in f(t″) although its formula is not implied): acceptance is
    // tested with formulas stripped; condition 2 handles values.
    let stripped: Vec<Xam> = viable.iter().map(|q| strip_formulas(q)).collect();
    let erasures = canonical::erasure_sets(p);
    let mut seen = HashSet::new();
    let mut ok = true;
    canonical::for_each_embedding(p, s, &mut |e| {
        for f in &erasures {
            let t = canonical::canonical_tree(p, s, e, f);
            if seen.contains(&t.key()) {
                continue;
            }
            if !f.is_empty() && !pattern_eval::accepts_tuple(p, s, &t, &t.return_tuple) {
                continue;
            }
            seen.insert(t.key());
            // condition 1: some pattern structurally accepts the tuple
            let accepting: Vec<&Xam> = viable
                .iter()
                .copied()
                .zip(&stripped)
                .filter(|(_, qs)| pattern_eval::accepts_tuple(qs, s, &t, &t.return_tuple))
                .map(|(q, _)| q)
                .collect();
            if accepting.is_empty() {
                ok = false;
                return false;
            }
            // condition 2: value cover
            if !formula_cover(&t, &accepting, s) {
                ok = false;
                return false;
            }
        }
        true
    });
    ok
}

/// Copy of a pattern with every value formula replaced by `T`.
fn strip_formulas(p: &Xam) -> Xam {
    let mut out = p.clone();
    for n in 0..out.nodes.len() {
        out.nodes[n].value_predicate = Formula::True;
    }
    out
}

/// Check `φ_{t} ⟹ ⋁_{t' ∈ g(t)} φ_{t'}` where `g(t)` are the canonical
/// trees of the accepting patterns with the same return tuple.
fn formula_cover(t: &CanonicalTree, accepting: &[&Xam], s: &Summary) -> bool {
    // gather g(t): matching trees of the accepting patterns
    let mut g: Vec<CanonicalTree> = Vec::new();
    for q in accepting {
        let erasures = canonical::erasure_sets(q);
        canonical::for_each_embedding(q, s, &mut |e| {
            for f in &erasures {
                let tq = canonical::canonical_tree(q, s, e, f);
                if tq.return_tuple == t.return_tuple {
                    g.push(tq);
                }
            }
            true
        });
    }
    // variables: summary nodes with a non-trivial formula anywhere
    let mut vars: Vec<SummaryNodeId> = Vec::new();
    let formulas_of = |tree: &CanonicalTree, map: &mut HashMap<SummaryNodeId, Formula>| {
        for n in &tree.nodes {
            if n.formula != Formula::True {
                let e = map.entry(n.summary).or_insert(Formula::True);
                let merged = std::mem::replace(e, Formula::True);
                *e = merged.and(n.formula.clone());
            }
        }
    };
    let mut phi_t: HashMap<SummaryNodeId, Formula> = HashMap::new();
    formulas_of(t, &mut phi_t);
    let mut phi_g: Vec<HashMap<SummaryNodeId, Formula>> = Vec::new();
    for tg in &g {
        let mut m = HashMap::new();
        formulas_of(tg, &mut m);
        phi_g.push(m);
    }
    for k in phi_t.keys() {
        if !vars.contains(k) {
            vars.push(*k);
        }
    }
    for m in &phi_g {
        for k in m.keys() {
            if !vars.contains(k) {
                vars.push(*k);
            }
        }
    }
    if vars.is_empty() {
        return true; // no value constraints anywhere
    }
    // per-variable sample points
    let samples: Vec<Vec<String>> = vars
        .iter()
        .map(|v| {
            let mut fs: Vec<&Formula> = Vec::new();
            if let Some(f) = phi_t.get(v) {
                fs.push(f);
            }
            for m in &phi_g {
                if let Some(f) = m.get(v) {
                    fs.push(f);
                }
            }
            sample_points(&fs)
        })
        .collect();
    // product of samples, capped
    let total: usize = samples.iter().map(|s| s.len()).product();
    if total > 200_000 {
        // refuse to decide (conservatively not contained); realistic
        // patterns stay far below this
        return false;
    }
    let mut idx = vec![0usize; vars.len()];
    loop {
        // evaluate
        let assign: HashMap<SummaryNodeId, &str> = vars
            .iter()
            .enumerate()
            .map(|(i, v)| (*v, samples[i][idx[i]].as_str()))
            .collect();
        let eval_map = |m: &HashMap<SummaryNodeId, Formula>| -> bool {
            m.iter().all(|(v, f)| f.eval(assign[v]))
        };
        if eval_map(&phi_t) && !phi_g.iter().any(eval_map) {
            return false;
        }
        // increment
        let mut i = 0;
        loop {
            if i == idx.len() {
                return true;
            }
            idx[i] += 1;
            if idx[i] < samples[i].len() {
                break;
            }
            idx[i] = 0;
            i += 1;
        }
    }
}

/// Region-sampling points for a set of single-variable formulas: every
/// constant, a point strictly inside every open region, and points beyond
/// the extremes.
fn sample_points(fs: &[&Formula]) -> Vec<String> {
    // reuse Formula::implies' internal logic by round-tripping through a
    // dedicated sampler: collect constants via Display parsing would be
    // fragile, so re-walk the formulas
    fn collect<'f>(f: &'f Formula, out: &mut Vec<&'f xam_core::ast::FormulaConst>) {
        match f {
            Formula::Cmp(_, c) => out.push(c),
            Formula::And(a, b) | Formula::Or(a, b) => {
                collect(a, out);
                collect(b, out);
            }
            _ => {}
        }
    }
    let mut consts = Vec::new();
    for f in fs {
        collect(f, &mut consts);
    }
    let mut nums: Vec<f64> = Vec::new();
    let mut all_numeric = true;
    for c in &consts {
        match c {
            xam_core::ast::FormulaConst::Int(i) => nums.push(*i as f64),
            xam_core::ast::FormulaConst::Str(s) => match s.trim().parse::<f64>() {
                Ok(x) => nums.push(x),
                Err(_) => {
                    all_numeric = false;
                    break;
                }
            },
        }
    }
    if all_numeric {
        nums.sort_by(|a, b| a.partial_cmp(b).unwrap());
        nums.dedup();
        let mut pts = Vec::new();
        if nums.is_empty() {
            pts.push(0.0);
        } else {
            pts.push(nums[0] - 1.0);
            for w in nums.windows(2) {
                pts.push((w[0] + w[1]) / 2.0);
            }
            pts.push(nums[nums.len() - 1] + 1.0);
            pts.extend(nums.iter().copied());
        }
        pts.iter()
            .map(|x| {
                if x.fract() == 0.0 {
                    format!("{}", *x as i64)
                } else {
                    format!("{x}")
                }
            })
            .collect()
    } else {
        let mut strs: Vec<String> = consts
            .iter()
            .map(|c| match c {
                xam_core::ast::FormulaConst::Int(i) => i.to_string(),
                xam_core::ast::FormulaConst::Str(s) => s.clone(),
            })
            .collect();
        strs.sort();
        strs.dedup();
        let mut pts = vec![String::new()];
        for s in &strs {
            pts.push(s.clone());
            pts.push(format!("{s}\u{1}"));
        }
        pts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xam_core::parse_xam;
    use xmltree::parse_document;

    fn s_of(xml: &str) -> Summary {
        Summary::of_document(&parse_document(xml).unwrap())
    }

    /// Shorthand: default (sequential, uncached) containment verdict.
    fn c(p: &Xam, q: &Xam, s: &Summary) -> bool {
        contain(p, q, s, &ContainOptions::default()).contained
    }

    #[test]
    fn self_containment() {
        let s = s_of("<a><b><c/></b><d/></a>");
        for p in ["//b[id:s]", "//b[id:s]{ /c[id:s] }", "//*[id:s]"] {
            let x = parse_xam(p).unwrap();
            assert!(c(&x, &x, &s), "{p} ⊈ itself");
            assert!(equivalent(&x, &x, &s));
        }
    }

    #[test]
    fn star_generalizes_label() {
        let s = s_of("<a><b><c/></b><d/></a>");
        let b = parse_xam("//b[id:s]").unwrap();
        let star = parse_xam("//*[id:s]").unwrap();
        assert!(c(&b, &star, &s));
        assert!(!c(&star, &b, &s));
    }

    #[test]
    fn summary_constraints_enable_containment() {
        // in this summary every b sits under a, so //b ≡_S /a/b — without
        // constraints this containment would fail
        let s = s_of("<a><b/><b/></a>");
        let anyb = parse_xam("//b[id:s]").unwrap();
        let ab = parse_xam("/a{ /b[id:s] }").unwrap();
        assert!(c(&anyb, &ab, &s));
        assert!(c(&ab, &anyb, &s));
        assert!(equivalent(&anyb, &ab, &s));
    }

    #[test]
    fn branch_constraints_from_summary() {
        // every b has a c child in the summary-annotated sense? No: the
        // summary says b *can* have a c child; //b ⊆ //b[c] must FAIL
        // because a conforming document may have a b without c.
        let s = s_of("<a><b><c/></b><b><c/></b></a>");
        let b = parse_xam("//b[id:s]").unwrap();
        let bc = parse_xam("//b[id:s]{ /s c }").unwrap();
        // the canonical-tree check is purely structural: mod_S(//b) has the
        // tree a/b, which //b[c] does not accept
        assert!(!c(&b, &bc, &s));
        assert!(c(&bc, &b, &s));
    }

    #[test]
    fn intermediate_paths_resolved_by_summary() {
        // summary: a/f/d/e. //a//e ≡_S //a//d//e since every e is under d.
        let s = s_of("<a><f><d><e/></d></f></a>");
        let ae = parse_xam("//a{ //e[id:s] }").unwrap();
        let ade = parse_xam("//a{ //d{ //e[id:s] } }").unwrap();
        assert!(equivalent(&ae, &ade, &s));
    }

    #[test]
    fn decorated_containment() {
        let s = s_of("<a><b>3</b></a>");
        let p = parse_xam("//b[id:s,val=3]").unwrap();
        let q = parse_xam("//b[id:s,val>1]").unwrap();
        assert!(c(&p, &q, &s));
        assert!(!c(&q, &p, &s));
    }

    #[test]
    fn attribute_signature_must_match() {
        let s = s_of("<a><b/></a>");
        let p = parse_xam("//b[id:s]").unwrap();
        let q = parse_xam("//b[val]").unwrap();
        // same structure, different stored attributes → not contained
        assert!(!c(&p, &q, &s));
    }

    #[test]
    fn optional_pattern_containment() {
        // Figure 4.10-style: optional edges; p1 with optional branches is
        // contained in p2 = the same pattern with fewer constraints
        let s = s_of("<t><a><c><b/><d><e/></d></c><c/></a></t>");
        let p1 = parse_xam("//a{ /c[id:s]{ /? b[id:s], /? d{ /e } } }").unwrap();
        let p2 = parse_xam("//c[id:s]{ /? b[id:s] }").unwrap();
        assert!(c(&p1, &p2, &s));
    }

    #[test]
    fn union_containment() {
        // summary with b under a and b under d: //b ⊆ /a/b ∪ //d/b
        let s = s_of("<r><a><b/></a><d><b/></d></r>");
        let b = parse_xam("//b[id:s]").unwrap();
        let ab = parse_xam("//a{ /b[id:s] }").unwrap();
        let db = parse_xam("//d{ /b[id:s] }").unwrap();
        assert!(!c(&b, &ab, &s));
        assert!(!c(&b, &db, &s));
        assert!(contained_in_union(&b, &[&ab, &db], &s));
        assert!(contained_in_union(&ab, &[&b], &s));
    }

    #[test]
    fn union_value_cover() {
        // §4.4.2-style: v=3 region split across two patterns
        let s = s_of("<a><b>3</b></a>");
        let p = parse_xam("//b[id:s,val>0,val<10]").unwrap();
        let q1 = parse_xam("//b[id:s,val>0,val<5]").unwrap();
        let q2 = parse_xam("//b[id:s,val>=5]").unwrap();
        assert!(!c(&p, &q1, &s));
        assert!(contained_in_union(&p, &[&q1, &q2], &s));
        // removing the upper half breaks the cover
        assert!(!contained_in_union(&p, &[&q1], &s));
    }

    #[test]
    fn nested_pattern_conditions() {
        let s = s_of("<a><b><c/><c/></b><b><c/></b></a>");
        let flat = parse_xam("//b[id:s]{ /c[id:s] }").unwrap();
        let nested = parse_xam("//b[id:s]{ /n c[id:s] }").unwrap();
        // nesting depth differs → not contained either way
        assert!(!c(&flat, &nested, &s));
        assert!(!c(&nested, &flat, &s));
        assert!(c(&nested, &nested, &s));
    }

    #[test]
    fn nested_relaxation_via_one_to_one() {
        // x has exactly one w child (1-edge); nesting under x vs under w is
        // equivalent
        let s = s_of("<a><x><w><c/><c/></w></x><x><w><c/></w></x></a>");
        let under_x = parse_xam("//x[id:s]{ //n c[id:s] }").unwrap();
        let under_w = parse_xam("//x[id:s]{ /w{ /n c[id:s] } }").unwrap();
        assert!(c(&under_w, &under_x, &s));
    }

    #[test]
    fn satisfiability() {
        let s = s_of("<a><b/></a>");
        assert!(satisfiable(&parse_xam("//b").unwrap(), &s));
        assert!(!satisfiable(&parse_xam("//zzz").unwrap(), &s));
        assert!(!satisfiable(&parse_xam("//b{ /b }").unwrap(), &s));
    }

    #[test]
    fn early_exit_reports_fewer_trees() {
        let s = s_of("<a><b><c/></b><b><d/></b><b><e/></b></a>");
        let p = parse_xam("//b[id:s]").unwrap();
        let q = parse_xam("//b[id:s]{ /s c }").unwrap();
        let neg = contain(&p, &q, &s, &ContainOptions::default());
        assert!(!neg.contained);
        let pos = contain(&p, &p, &s, &ContainOptions::default());
        assert!(pos.contained);
        assert!(neg.trees_checked <= pos.trees_checked);
    }

    #[test]
    fn parallel_matches_sequential() {
        // wide summary so the root-candidate split actually distributes
        let s = s_of("<r><a><x/></a><b><x/></b><c><x/></c><d><x/></d><e><x/></e><f><x/></f></r>");
        let pats = [
            "//x[id:s]",
            "//*[id:s]",
            "//*{ /x[id:s] }",
            "//a{ /x[id:s] }",
            "//b[id:s]{ /? x }",
        ];
        for pp in &pats {
            for qq in &pats {
                let p = parse_xam(pp).unwrap();
                let q = parse_xam(qq).unwrap();
                let seq = contain(&p, &q, &s, &ContainOptions::default());
                for threads in [2, 4, 7] {
                    let par = contain(&p, &q, &s, &ContainOptions::default().with_threads(threads));
                    assert_eq!(seq.contained, par.contained, "{pp} vs {qq} @{threads}");
                    if seq.contained {
                        // positive runs enumerate the full model: sizes match
                        assert_eq!(seq.model_size, par.model_size, "{pp} vs {qq} @{threads}");
                        assert_eq!(
                            seq.trees_checked, par.trees_checked,
                            "{pp} vs {qq} @{threads}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn cached_verdicts_are_stable_and_hit() {
        let s = s_of("<a><b><c/></b><d/></a>");
        let cache = CanonicalCache::new(64);
        let p = parse_xam("//b[id:s]").unwrap();
        let q = parse_xam("//*[id:s]").unwrap();
        let opts = ContainOptions::default().with_cache(&cache);
        let first = contain(&p, &q, &s, &opts);
        let second = contain(&p, &q, &s, &opts);
        assert_eq!(first.contained, second.contained);
        assert_eq!(first.model_size, second.model_size);
        let stats = cache.stats();
        assert!(stats.hits >= 1, "second call should hit: {stats:?}");
        // the cached verdict agrees with the uncached one
        assert_eq!(
            first.contained,
            contain(&p, &q, &s, &ContainOptions::default()).contained
        );
    }
}
