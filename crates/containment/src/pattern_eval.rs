//! Evaluating a pattern over a canonical tree (the `p'(t_e)` of
//! Proposition 4.4.1, condition 3).
//!
//! Canonical trees are *decorated* trees: each node stands on a summary
//! node (supplying its label and kind) and carries a value formula. A
//! decorated embedding requires `φ_tree_node ⟹ φ_pattern_node`
//! (§4.1); optional pattern edges may map to `⊥` only when no subtree
//! embedding exists. The result is the set of return tuples at the
//! granularity of summary nodes (paths), which is exactly what the
//! containment condition compares.

use std::collections::BTreeSet;

use summary::{Summary, SummaryNodeId};
use xam_core::ast::{Axis, Formula, Xam, XamNodeId};
use xmltree::NodeKind;

use crate::canonical::CanonicalTree;

/// Does pattern node `pn` match canonical-tree node `cn` (label, kind,
/// formula implication)?
fn node_matches(xam: &Xam, pn: XamNodeId, s: &Summary, t: &CanonicalTree, cn: usize) -> bool {
    let node = xam.node(pn);
    let sn = t.nodes[cn].summary;
    let kind = s.kind(sn);
    let kind_ok = if node.is_attribute {
        kind == NodeKind::Attribute
    } else {
        kind == NodeKind::Element
    };
    if !kind_ok {
        return false;
    }
    if let Some(tag) = &node.tag_predicate {
        if s.label(sn) != tag {
            return false;
        }
    }
    // decorated embedding: the tree node's formula must imply the
    // pattern's formula
    if node.value_predicate != Formula::True && !t.nodes[cn].formula.implies(&node.value_predicate)
    {
        return false;
    }
    true
}

fn candidates(
    xam: &Xam,
    pn: XamNodeId,
    s: &Summary,
    t: &CanonicalTree,
    parent_image: Option<usize>,
) -> Vec<usize> {
    let axis = xam.node(pn).edge.axis;
    let pool: Vec<usize> = match (parent_image, axis) {
        // from ⊤: `/` reaches the canonical root only, `//` any node
        (None, Axis::Child) => vec![t.root()],
        (None, Axis::Descendant) => (0..t.len()).collect(),
        (Some(p), Axis::Child) => t.nodes[p].children.clone(),
        (Some(p), Axis::Descendant) => (0..t.len()).filter(|&c| t.is_ancestor(p, c)).collect(),
    };
    pool.into_iter()
        .filter(|&c| node_matches(xam, pn, s, t, c))
        .collect()
}

fn subtree_embeddable(
    xam: &Xam,
    pn: XamNodeId,
    s: &Summary,
    t: &CanonicalTree,
    parent_image: Option<usize>,
) -> bool {
    candidates(xam, pn, s, t, parent_image)
        .into_iter()
        .any(|c| {
            xam.children(pn).iter().all(|&ch| {
                xam.node(ch).edge.sem.is_optional() || subtree_embeddable(xam, ch, s, t, Some(c))
            })
        })
}

/// Evaluate the pattern over a canonical tree: the set of return tuples,
/// each a vector of `Option<SummaryNodeId>` (the *paths* of the matched
/// canonical nodes; `⊥` under unmatched optional edges).
pub fn eval_on_canonical(
    xam: &Xam,
    s: &Summary,
    t: &CanonicalTree,
) -> BTreeSet<Vec<Option<SummaryNodeId>>> {
    let rets = xam.return_nodes();
    let mut out = BTreeSet::new();
    let mut cur: Vec<Option<usize>> = vec![None; xam.len()];

    #[allow(clippy::too_many_arguments)]
    fn assign(
        xam: &Xam,
        s: &Summary,
        t: &CanonicalTree,
        siblings: &[XamNodeId],
        idx: usize,
        parent_image: Option<usize>,
        cur: &mut Vec<Option<usize>>,
        emit: &mut dyn FnMut(&mut Vec<Option<usize>>),
    ) {
        if idx == siblings.len() {
            emit(cur);
            return;
        }
        let pn = siblings[idx];
        let optional = xam.node(pn).edge.sem.is_optional();
        if optional && !subtree_embeddable(xam, pn, s, t, parent_image) {
            assign(xam, s, t, siblings, idx + 1, parent_image, cur, emit);
            return;
        }
        for c in candidates(xam, pn, s, t, parent_image) {
            cur[pn.index()] = Some(c);
            let children: Vec<XamNodeId> = xam.children(pn).to_vec();
            assign(xam, s, t, &children, 0, Some(c), cur, &mut |cur2| {
                assign(xam, s, t, siblings, idx + 1, parent_image, cur2, emit);
            });
            cur[pn.index()] = None;
        }
    }

    let tops: Vec<XamNodeId> = xam.children(XamNodeId::TOP).to_vec();
    assign(xam, s, t, &tops, 0, None, &mut cur, &mut |cur| {
        let tuple: Vec<Option<SummaryNodeId>> = rets
            .iter()
            .map(|r| cur[r.index()].map(|c| t.nodes[c].summary))
            .collect();
        out.insert(tuple);
    });
    out
}

/// Does the pattern accept the given return tuple on this canonical tree
/// (the membership test of Proposition 4.4.1, condition 3)? Early-exits as
/// soon as the tuple is produced.
pub fn accepts_tuple(
    xam: &Xam,
    s: &Summary,
    t: &CanonicalTree,
    tuple: &[Option<SummaryNodeId>],
) -> bool {
    let rets = xam.return_nodes();
    accepts_tuple_with_rets(xam, s, t, tuple, &rets)
}

/// As [`accepts_tuple`], but with an explicit return-node list.
pub fn accepts_tuple_with_rets(
    xam: &Xam,
    s: &Summary,
    t: &CanonicalTree,
    tuple: &[Option<SummaryNodeId>],
    rets: &[XamNodeId],
) -> bool {
    // simple but correct: enumerate and test membership with early exit
    // through a sentinel search
    if rets.len() != tuple.len() {
        return false;
    }
    let mut found = false;
    let mut cur: Vec<Option<usize>> = vec![None; xam.len()];

    #[allow(clippy::too_many_arguments)]
    fn assign(
        xam: &Xam,
        s: &Summary,
        t: &CanonicalTree,
        siblings: &[XamNodeId],
        idx: usize,
        parent_image: Option<usize>,
        cur: &mut Vec<Option<usize>>,
        emit: &mut dyn FnMut(&mut Vec<Option<usize>>) -> bool,
    ) -> bool {
        if idx == siblings.len() {
            return emit(cur);
        }
        let pn = siblings[idx];
        let optional = xam.node(pn).edge.sem.is_optional();
        if optional && !subtree_embeddable(xam, pn, s, t, parent_image) {
            return assign(xam, s, t, siblings, idx + 1, parent_image, cur, emit);
        }
        for c in candidates(xam, pn, s, t, parent_image) {
            cur[pn.index()] = Some(c);
            let children: Vec<XamNodeId> = xam.children(pn).to_vec();
            let stop = assign(xam, s, t, &children, 0, Some(c), cur, &mut |cur2| {
                assign(xam, s, t, siblings, idx + 1, parent_image, cur2, emit)
            });
            cur[pn.index()] = None;
            if stop {
                return true;
            }
        }
        false
    }

    let tops: Vec<XamNodeId> = xam.children(XamNodeId::TOP).to_vec();
    assign(xam, s, t, &tops, 0, None, &mut cur, &mut |cur| {
        let ok = rets.iter().zip(tuple).all(|(r, want)| {
            let got = cur[r.index()].map(|c| t.nodes[c].summary);
            got == *want
        });
        if ok {
            found = true;
        }
        found
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canonical::canonical_model;
    use summary::Summary;
    use xam_core::parse_xam;
    use xmltree::parse_document;

    #[test]
    fn pattern_accepts_own_canonical_tuples() {
        let doc = parse_document("<a><b><c/></b><b><d/></b></a>").unwrap();
        let s = Summary::of_document(&doc);
        let p = parse_xam("//b[id:s]{ /c[id:s] }").unwrap();
        let (model, _) = canonical_model(&p, &s);
        for t in &model {
            assert!(accepts_tuple(&p, &s, t, &t.return_tuple));
        }
    }

    #[test]
    fn stricter_pattern_rejects() {
        let doc = parse_document("<a><b><c/></b><b><d/></b></a>").unwrap();
        let s = Summary::of_document(&doc);
        let p = parse_xam("//b[id:s]").unwrap();
        let q = parse_xam("//b[id:s]{ /s c }").unwrap(); // b with a c child
        let (model, _) = canonical_model(&p, &s);
        // p's model has one tree (b); q does not accept it (no c chain)
        assert_eq!(model.len(), 1);
        assert!(!accepts_tuple(&q, &s, &model[0], &model[0].return_tuple));
    }

    #[test]
    fn formula_implication_in_eval() {
        let doc = parse_document("<a><b>5</b></a>").unwrap();
        let s = Summary::of_document(&doc);
        let p = parse_xam("//b[id:s,val=5]").unwrap();
        let q_weak = parse_xam("//b[id:s,val>0]").unwrap();
        let q_strong = parse_xam("//b[id:s,val>9]").unwrap();
        let (model, _) = canonical_model(&p, &s);
        assert_eq!(model.len(), 1);
        assert!(accepts_tuple(
            &q_weak,
            &s,
            &model[0],
            &model[0].return_tuple
        ));
        assert!(!accepts_tuple(
            &q_strong,
            &s,
            &model[0],
            &model[0].return_tuple
        ));
    }

    #[test]
    fn eval_enumerates_tuples() {
        let doc = parse_document("<a><b><c/></b></a>").unwrap();
        let s = Summary::of_document(&doc);
        let p = parse_xam("//a{ /b[id:s]{ /c[id:s] } }").unwrap();
        let (model, _) = canonical_model(&p, &s);
        let q = parse_xam("//*[id:s]{ //*[id:s] }").unwrap();
        let tuples = eval_on_canonical(&q, &s, &model[0]);
        // (a,b), (a,c), (b,c)
        assert_eq!(tuples.len(), 3);
    }
}
