//! Shared canonical-model and verdict cache.
//!
//! Containment, minimization and rewriting all revolve around the same
//! two expensive computations: enumerating canonical models `mod_S(p)`
//! and deciding verdicts `p ⊆_S q`. During rewriting the *same* query
//! pattern is checked against hundreds of candidate rewritings, and
//! minimization re-decides equivalence for overlapping contraction
//! chains — both workloads hit the same `(pattern, summary)` pairs over
//! and over. [`CanonicalCache`] memoizes three result classes across
//! those call sites, keyed by structural fingerprints so the cache is
//! shared freely between threads and engine layers:
//!
//! * containment verdicts keyed by `(p, p_rets, q, q_rets, S)`,
//! * full canonical models keyed by `(p, S)`,
//! * per-node path annotations keyed by `(p, S)`.
//!
//! Eviction is LRU over an access tick; lookups take a read lock only
//! (recency is bumped through an atomic inside the entry), so concurrent
//! workers in the parallel engine share one cache without serializing.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use summary::{Summary, SummaryNodeId};
use xam_core::ast::{Xam, XamNodeId};

use crate::canonical::{CanonicalTree, ModelStats};
use crate::ContainmentOutcome;

// ------------------------------------------------------------------
// fingerprints

fn fnv(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

fn fnv_u64(h: &mut u64, v: u64) {
    fnv(h, &v.to_le_bytes());
}

/// Structural fingerprint of a pattern: its display form (which round-
/// trips every label, axis, edge semantics, stored attribute and value
/// formula) plus the `ordered` flag the display omits.
pub fn pattern_fingerprint(p: &Xam) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    fnv(&mut h, p.to_string().as_bytes());
    fnv_u64(&mut h, p.ordered as u64);
    h
}

/// Fingerprint of a return-node list (the rewriter aligns these
/// explicitly, so they key verdicts independently of the pattern).
pub fn rets_fingerprint(rets: &[XamNodeId]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for r in rets {
        fnv_u64(&mut h, r.0 as u64 + 1);
    }
    h
}

/// Structural fingerprint of a summary: per node its label, kind,
/// parent and incoming edge cardinality — everything containment reads.
pub fn summary_fingerprint(s: &Summary) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for n in s.all_nodes() {
        fnv(&mut h, s.label(n).as_bytes());
        fnv_u64(&mut h, s.kind(n) as u64);
        fnv_u64(&mut h, s.parent(n).map(|p| p.0 as u64 + 2).unwrap_or(1));
        fnv_u64(&mut h, s.edge_card(n) as u64);
    }
    h
}

// ------------------------------------------------------------------
// LRU map

/// A bounded map with least-recently-used eviction. Lookups only take
/// the enclosing read lock: recency is an [`AtomicU64`] bumped from a
/// shared tick counter, and eviction (a linear min-tick scan, rare
/// relative to lookups) happens under the write lock on insert.
struct LruMap<K, V> {
    map: HashMap<K, LruEntry<V>>,
    capacity: usize,
}

struct LruEntry<V> {
    value: V,
    tick: AtomicU64,
}

impl<K: Eq + Hash + Clone, V: Clone> LruMap<K, V> {
    fn new(capacity: usize) -> Self {
        LruMap {
            map: HashMap::new(),
            capacity: capacity.max(1),
        }
    }

    fn get(&self, k: &K, tick: u64) -> Option<V> {
        self.map.get(k).map(|e| {
            e.tick.store(tick, Ordering::Relaxed);
            e.value.clone()
        })
    }

    /// Insert, evicting the least-recently-used entry when full.
    /// Returns `true` if an eviction happened.
    fn insert(&mut self, k: K, v: V, tick: u64) -> bool {
        let mut evicted = false;
        if !self.map.contains_key(&k) && self.map.len() >= self.capacity {
            if let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.tick.load(Ordering::Relaxed))
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&victim);
                evicted = true;
            }
        }
        self.map.insert(
            k,
            LruEntry {
                value: v,
                tick: AtomicU64::new(tick),
            },
        );
        evicted
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

// ------------------------------------------------------------------
// the cache

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct VerdictKey {
    p: u64,
    p_rets: u64,
    q: u64,
    q_rets: u64,
    s: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ModelKey {
    p: u64,
    s: u64,
}

/// A point-in-time snapshot of cache effectiveness counters, with the
/// occupancy of each of the three memo maps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    /// Entries currently resident across all three maps.
    pub entries: usize,
    /// Containment verdicts resident.
    pub verdict_entries: usize,
    /// Canonical models resident.
    pub model_entries: usize,
    /// Path-annotation vectors resident.
    pub annotation_entries: usize,
}

impl CacheStats {
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A memoized canonical model: its trees plus enumeration statistics.
type CachedModel = Arc<(Vec<CanonicalTree>, ModelStats)>;

/// The shared cache. Cheap to share by reference (all interior
/// mutability); wrap in [`Arc`] to share across owners.
pub struct CanonicalCache {
    verdicts: RwLock<LruMap<VerdictKey, ContainmentOutcome>>,
    models: RwLock<LruMap<ModelKey, CachedModel>>,
    annotations: RwLock<LruMap<ModelKey, Arc<Vec<HashSet<SummaryNodeId>>>>>,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for CanonicalCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("CanonicalCache")
            .field("entries", &s.entries)
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .field("evictions", &s.evictions)
            .finish()
    }
}

impl Default for CanonicalCache {
    fn default() -> Self {
        CanonicalCache::new(4096)
    }
}

impl CanonicalCache {
    /// A cache holding up to `capacity` verdicts. Canonical models and
    /// annotations are bulkier, so their maps are bounded at
    /// `capacity / 8` entries (at least 16).
    pub fn new(capacity: usize) -> Self {
        let heavy = (capacity / 8).max(16);
        CanonicalCache {
            verdicts: RwLock::new(LruMap::new(capacity.max(1))),
            models: RwLock::new(LruMap::new(heavy)),
            annotations: RwLock::new(LruMap::new(heavy)),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    fn note(&self, hit: bool) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn note_eviction(&self, evicted: bool) {
        if evicted {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub fn stats(&self) -> CacheStats {
        let verdict_entries = self.verdicts.read().len();
        let model_entries = self.models.read().len();
        let annotation_entries = self.annotations.read().len();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: verdict_entries + model_entries + annotation_entries,
            verdict_entries,
            model_entries,
            annotation_entries,
        }
    }

    // -- verdicts --------------------------------------------------

    pub(crate) fn get_verdict(
        &self,
        p: u64,
        p_rets: u64,
        q: u64,
        q_rets: u64,
        s: u64,
    ) -> Option<ContainmentOutcome> {
        let key = VerdictKey {
            p,
            p_rets,
            q,
            q_rets,
            s,
        };
        let got = self.verdicts.read().get(&key, self.next_tick());
        self.note(got.is_some());
        got
    }

    pub(crate) fn put_verdict(
        &self,
        p: u64,
        p_rets: u64,
        q: u64,
        q_rets: u64,
        s: u64,
        outcome: ContainmentOutcome,
    ) {
        let key = VerdictKey {
            p,
            p_rets,
            q,
            q_rets,
            s,
        };
        let tick = self.next_tick();
        let evicted = self.verdicts.write().insert(key, outcome, tick);
        self.note_eviction(evicted);
    }

    // -- canonical models ------------------------------------------

    /// Memoized [`crate::canonical::canonical_model`]. `summary_fp` lets
    /// callers amortize the summary fingerprint; pass `None` to have it
    /// computed here.
    pub fn canonical_model(
        &self,
        p: &Xam,
        s: &Summary,
        summary_fp: Option<u64>,
    ) -> Arc<(Vec<CanonicalTree>, ModelStats)> {
        let key = ModelKey {
            p: pattern_fingerprint(p),
            s: summary_fp.unwrap_or_else(|| summary_fingerprint(s)),
        };
        if let Some(m) = self.models.read().get(&key, self.next_tick()) {
            self.note(true);
            return m;
        }
        self.note(false);
        let built = Arc::new(crate::canonical::canonical_model(p, s));
        let tick = self.next_tick();
        let evicted = self.models.write().insert(key, built.clone(), tick);
        self.note_eviction(evicted);
        built
    }

    // -- path annotations ------------------------------------------

    /// Memoized per-node path annotations of a whole pattern (indexed by
    /// XAM node index), computed in a single enumeration pass.
    pub fn path_annotations(
        &self,
        p: &Xam,
        s: &Summary,
        summary_fp: Option<u64>,
    ) -> Arc<Vec<HashSet<SummaryNodeId>>> {
        let key = ModelKey {
            p: pattern_fingerprint(p),
            s: summary_fp.unwrap_or_else(|| summary_fingerprint(s)),
        };
        if let Some(a) = self.annotations.read().get(&key, self.next_tick()) {
            self.note(true);
            return a;
        }
        self.note(false);
        let built = Arc::new(crate::canonical::path_annotations_all(p, s));
        let tick = self.next_tick();
        let evicted = self.annotations.write().insert(key, built.clone(), tick);
        self.note_eviction(evicted);
        built
    }
}

/// Hash helper for ad-hoc composite keys (used by the rewriter's memo).
pub fn hash_of(x: &impl Hash) -> u64 {
    let mut h = DefaultHasher::new();
    x.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xam_core::parse_xam;
    use xmltree::parse_document;

    fn s_of(xml: &str) -> Summary {
        Summary::of_document(&parse_document(xml).unwrap())
    }

    #[test]
    fn fingerprints_distinguish_patterns_and_summaries() {
        let p = parse_xam("//b[id:s]").unwrap();
        let q = parse_xam("//c[id:s]").unwrap();
        assert_ne!(pattern_fingerprint(&p), pattern_fingerprint(&q));
        assert_eq!(pattern_fingerprint(&p), pattern_fingerprint(&p.clone()));
        let s1 = s_of("<a><b/></a>");
        let s2 = s_of("<a><b/><c/></a>");
        assert_ne!(summary_fingerprint(&s1), summary_fingerprint(&s2));
    }

    #[test]
    fn verdict_roundtrip_counts_hits_and_misses() {
        let cache = CanonicalCache::new(8);
        assert!(cache.get_verdict(1, 2, 3, 4, 5).is_none());
        cache.put_verdict(
            1,
            2,
            3,
            4,
            5,
            ContainmentOutcome {
                contained: true,
                trees_checked: 7,
                model_size: 7,
            },
        );
        let got = cache.get_verdict(1, 2, 3, 4, 5).unwrap();
        assert!(got.contained && got.model_size == 7);
        let s = cache.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert!(s.hit_rate() > 0.49 && s.hit_rate() < 0.51);
        assert_eq!(s.verdict_entries, 1);
        assert_eq!(s.model_entries, 0);
        assert_eq!(s.annotation_entries, 0);
        assert_eq!(s.entries, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = CanonicalCache::new(2);
        let out = ContainmentOutcome {
            contained: false,
            trees_checked: 0,
            model_size: 0,
        };
        cache.put_verdict(1, 0, 0, 0, 0, out);
        cache.put_verdict(2, 0, 0, 0, 0, out);
        // touch 1 so 2 becomes the LRU victim
        assert!(cache.get_verdict(1, 0, 0, 0, 0).is_some());
        cache.put_verdict(3, 0, 0, 0, 0, out);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.get_verdict(1, 0, 0, 0, 0).is_some());
        assert!(cache.get_verdict(2, 0, 0, 0, 0).is_none());
        assert!(cache.get_verdict(3, 0, 0, 0, 0).is_some());
    }

    #[test]
    fn model_cache_returns_shared_arc() {
        let s = s_of("<a><b><c/></b></a>");
        let p = parse_xam("//b[id:s]").unwrap();
        let cache = CanonicalCache::default();
        let m1 = cache.canonical_model(&p, &s, None);
        let m2 = cache.canonical_model(&p, &s, None);
        assert!(Arc::ptr_eq(&m1, &m2));
        assert_eq!(m1.1.size, m1.0.len());
        let s = cache.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.model_entries, 1);
        assert_eq!(s.verdict_entries, 0);
        assert_eq!(
            s.entries,
            s.verdict_entries + s.model_entries + s.annotation_entries
        );
    }

    #[test]
    fn annotation_cache_matches_per_node_computation() {
        let s = s_of("<a><b><e/></b><d><e/></d></a>");
        let p = parse_xam("//b{ //e[id:s] }").unwrap();
        let cache = CanonicalCache::default();
        let all = cache.path_annotations(&p, &s, None);
        for n in p.pattern_nodes() {
            let single = crate::canonical::path_annotation(&p, &s, n);
            assert_eq!(all[n.index()], single, "node {n:?}");
        }
        assert_eq!(cache.stats().annotation_entries, 1);
    }
}
