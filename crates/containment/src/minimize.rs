//! Tree pattern minimization under summary constraints (§4.5).
//!
//! *S-contraction* erases one pattern node at a time (reconnecting its
//! children to its parent with `//` edges) as long as the result stays
//! `S`-equivalent; [`minimize_by_contraction`] computes the fixpoints.
//!
//! As the paper's Figure 4.12 shows, contraction does not always reach the
//! globally smallest `S`-equivalent pattern — sometimes a *different*
//! intermediate label (one that never appeared in the input) yields a
//! smaller pattern. [`minimize_global`] searches linear `//`-chain
//! candidates built from the summary's ancestor labels of the return
//! node's path annotation, finding such smaller equivalents for
//! single-return conjunctive patterns.

use std::collections::{BTreeSet, HashSet};

use summary::Summary;
use xam_core::ast::{Axis, Xam, XamEdge, XamNode, XamNodeId};

use crate::{canonical, equivalent_with, ContainOptions};

/// Erase `victim` from the pattern, reconnecting its children to its
/// parent with `//` (join) edges. Returns `None` for return nodes or `⊤`.
pub fn contract(p: &Xam, victim: XamNodeId) -> Option<Xam> {
    if victim == XamNodeId::TOP || p.node(victim).is_return() {
        return None;
    }
    let mut out = Xam::top();
    out.ordered = p.ordered;
    fn rec(src: &Xam, n: XamNodeId, victim: XamNodeId, dst: &mut Xam, under: XamNodeId) {
        for &c in src.children(n) {
            if c == victim {
                // splice grandchildren under `under` with // edges
                for &gc in src.children(c) {
                    let mut node = src.node(gc).clone();
                    node.children = Vec::new();
                    node.edge = XamEdge {
                        axis: Axis::Descendant,
                        sem: node.edge.sem,
                    };
                    let id = dst.add_child(under, node);
                    rec(src, gc, victim, dst, id);
                }
            } else {
                let mut node = src.node(c).clone();
                node.children = Vec::new();
                let id = dst.add_child(under, node);
                rec(src, c, victim, dst, id);
            }
        }
    }
    rec(p, XamNodeId::TOP, victim, &mut out, XamNodeId::TOP);
    Some(out)
}

/// All patterns minimal under `S`-contraction reachable from `p` (there
/// may be several, as in Figure 4.12's `t'_1` and `t'_2`).
pub fn minimize_by_contraction(p: &Xam, s: &Summary) -> Vec<Xam> {
    minimize_by_contraction_with(p, s, &ContainOptions::default())
}

/// [`minimize_by_contraction`] under explicit [`ContainOptions`] — the
/// engine passes its shared cache here, which pays off because the
/// contraction search re-decides equivalence for overlapping chains.
pub fn minimize_by_contraction_with(p: &Xam, s: &Summary, opts: &ContainOptions) -> Vec<Xam> {
    let mut results: Vec<Xam> = Vec::new();
    let mut seen: HashSet<String> = HashSet::new();
    let mut frontier = vec![p.clone()];
    seen.insert(p.to_string());
    while let Some(cur) = frontier.pop() {
        let mut contracted_any = false;
        for victim in cur.pattern_nodes() {
            if let Some(cand) = contract(&cur, victim) {
                if equivalent_with(&cand, p, s, opts) {
                    contracted_any = true;
                    if seen.insert(cand.to_string()) {
                        frontier.push(cand);
                    }
                }
            }
        }
        if !contracted_any && !results.iter().any(|r| r.to_string() == cur.to_string()) {
            results.push(cur);
        }
    }
    // keep only the smallest fixpoints
    let min = results.iter().map(|r| r.pattern_size()).min().unwrap_or(0);
    results.retain(|r| r.pattern_size() == min);
    results
}

/// Globally minimize a *single-return, conjunctive* pattern: search
/// `//`-chain candidates `//l_1//l_2…//l_k[attrs]` whose intermediate
/// labels are drawn from the summary ancestors of the return node's path
/// annotation, keeping the smallest `S`-equivalent ones. Falls back to
/// the contraction fixpoints when no smaller chain exists (or the pattern
/// is out of scope).
pub fn minimize_global(p: &Xam, s: &Summary) -> Vec<Xam> {
    minimize_global_with(p, s, &ContainOptions::default())
}

/// [`minimize_global`] under explicit [`ContainOptions`].
pub fn minimize_global_with(p: &Xam, s: &Summary, opts: &ContainOptions) -> Vec<Xam> {
    let by_contraction = minimize_by_contraction_with(p, s, opts);
    let rets = p.return_nodes();
    if rets.len() != 1 || !p.is_conjunctive() {
        return by_contraction;
    }
    let ret = rets[0];
    let ret_node = p.node(ret).clone();
    if ret_node.value_predicate != xam_core::ast::Formula::True {
        return by_contraction;
    }
    // candidate labels: ancestors of the return node's possible paths
    let annotation = canonical::path_annotation(p, s, ret);
    if annotation.is_empty() {
        return by_contraction;
    }
    let mut labels: BTreeSet<String> = BTreeSet::new();
    for &sn in &annotation {
        let mut cur = s.parent(sn);
        while let Some(c) = cur {
            labels.insert(s.label(c).to_string());
            cur = s.parent(c);
        }
    }
    let labels: Vec<String> = labels.into_iter().collect();
    let best_so_far = by_contraction
        .first()
        .map(|r| r.pattern_size())
        .unwrap_or(p.pattern_size());
    // chains strictly smaller than the contraction result
    for k in 1..best_so_far {
        let mut found: Vec<Xam> = Vec::new();
        // k-1 intermediate labels + the return node
        let mut combo = vec![0usize; k - 1];
        loop {
            // build the chain
            let mut cand = Xam::top();
            cand.ordered = p.ordered;
            let mut under = XamNodeId::TOP;
            for &li in &combo {
                let mut n = XamNode::star(format!("m{li}_{}", under.0));
                n.tag_predicate = Some(labels[li].clone());
                n.edge = XamEdge::descendant();
                under = cand.add_child(under, n);
            }
            let mut r = ret_node.clone();
            r.children = Vec::new();
            r.edge = XamEdge::descendant();
            cand.add_child(under, r);
            if equivalent_with(&cand, p, s, opts) {
                found.push(cand);
            }
            // next combination
            let mut i = 0;
            loop {
                if i == combo.len() {
                    break;
                }
                combo[i] += 1;
                if combo[i] < labels.len() {
                    break;
                }
                combo[i] = 0;
                i += 1;
            }
            if combo.iter().all(|&c| c == 0) || combo.is_empty() {
                break;
            }
        }
        if !found.is_empty() {
            return found;
        }
    }
    by_contraction
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equivalent;
    use xam_core::parse_xam;
    use xmltree::parse_document;

    fn s_of(xml: &str) -> Summary {
        Summary::of_document(&parse_document(xml).unwrap())
    }

    #[test]
    fn contraction_removes_redundant_star() {
        // //a//*//c where the summary forces a//c anyway
        let s = s_of("<a><b><c/></b></a>");
        let p = parse_xam("//a{ //*{ //c[id:s] } }").unwrap();
        let min = minimize_by_contraction(&p, &s);
        assert!(!min.is_empty());
        assert!(min.iter().all(|m| m.pattern_size() <= 2));
        for m in &min {
            assert!(equivalent(m, &p, &s));
        }
    }

    #[test]
    fn return_nodes_never_erased() {
        let p = parse_xam("//b[id:s]").unwrap();
        assert!(contract(&p, XamNodeId(1)).is_none());
    }

    #[test]
    fn figure_4_12_style_global_minimization() {
        // summary: a has two branches f/d/e and g/d/e, plus a direct d/e
        // whose e we must NOT select. The pattern //a//f//d//e ∪-style
        // cannot drop both intermediates by contraction, but //f//e works
        // globally if f pins the branch.
        let s = s_of("<a><f><d><e/></d></f><d><x><e/></x></d></a>");
        let p = parse_xam("//a{ //f{ //d{ //e[id:s] } } }").unwrap();
        let min = minimize_global(&p, &s);
        assert!(!min.is_empty());
        let best = min[0].pattern_size();
        assert!(best <= 2, "expected ≤2 nodes, got {best}:\n{}", min[0]);
        for m in &min {
            assert!(equivalent(m, &p, &s));
        }
    }

    #[test]
    fn minimization_preserves_semantics_on_docs() {
        let doc = parse_document("<a><f><d><e>1</e></d></f><d><x><e>2</e></x></d></a>").unwrap();
        let s = Summary::of_document(&doc);
        let p = parse_xam("//a{ //f{ //d{ //e[id:s] } } }").unwrap();
        let before = xam_core::evaluate(&p, &doc).unwrap();
        for m in minimize_global(&p, &s) {
            let after = xam_core::evaluate(&m, &doc).unwrap();
            assert_eq!(before.tuples.len(), after.tuples.len());
        }
    }

    #[test]
    fn already_minimal_stays() {
        let s = s_of("<a><b/></a>");
        let p = parse_xam("//b[id:s]").unwrap();
        let min = minimize_by_contraction(&p, &s);
        assert_eq!(min.len(), 1);
        assert_eq!(min[0].pattern_size(), 1);
    }
}
