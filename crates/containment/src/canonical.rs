//! Canonical models of patterns under a summary (§4.3).
//!
//! An embedding of a pattern into the summary (label- and axis-preserving,
//! Definition 4.1.1 transposed to `S`) induces a *canonical tree*: one
//! distinguished node per pattern node, connected by the parent-child
//! chains the summary dictates. The set of canonical trees of all
//! embeddings — duplicate-free — is the canonical model `mod_S(p)`, and
//! containment reduces to evaluating the container pattern on each
//! canonical tree (Proposition 4.4.1).
//!
//! Optional edges multiply the model by erasure subsets (§4.3.2);
//! decorated patterns carry their value formulas onto the distinguished
//! nodes.

use std::collections::HashSet;

use summary::{Summary, SummaryNodeId};
use xam_core::ast::{Axis, Formula, Xam, XamNodeId};
use xmltree::NodeKind;

/// An embedding of the pattern's non-`⊤` nodes into summary nodes
/// (indexed by XAM node index; the `⊤` slot is unused).
pub type SummaryEmbedding = Vec<Option<SummaryNodeId>>;

/// Does pattern node `pn` match summary node `sn` (label and kind; value
/// formulas do not restrict summary embeddings — they decorate the
/// canonical tree — but unsatisfiable formulas kill the pattern)?
pub fn node_matches(xam: &Xam, pn: XamNodeId, s: &Summary, sn: SummaryNodeId) -> bool {
    let node = xam.node(pn);
    let kind = s.kind(sn);
    let kind_ok = if node.is_attribute {
        kind == NodeKind::Attribute
    } else {
        kind == NodeKind::Element
    };
    if !kind_ok {
        return false;
    }
    if let Some(t) = &node.tag_predicate {
        if s.label(sn) != t {
            return false;
        }
    }
    if node.value_predicate != Formula::True && !node.value_predicate.satisfiable() {
        return false;
    }
    true
}

/// Candidate summary images for `pn` given the image of its parent
/// (`None` = the virtual document node above the summary root).
fn candidates(
    xam: &Xam,
    pn: XamNodeId,
    s: &Summary,
    parent_image: Option<SummaryNodeId>,
) -> Vec<SummaryNodeId> {
    let axis = xam.node(pn).edge.axis;
    let pool: Vec<SummaryNodeId> = match (parent_image, axis) {
        (None, Axis::Child) => vec![s.root()],
        (None, Axis::Descendant) => s.all_nodes().collect(),
        (Some(p), Axis::Child) => s.children(p).to_vec(),
        (Some(p), Axis::Descendant) => s.descendants(p),
    };
    pool.into_iter()
        .filter(|&sn| node_matches(xam, pn, s, sn))
        .collect()
}

/// Enumerate the strict (non-optional-aware) embeddings of the pattern
/// into the summary, invoking `visit` for each; `visit` returning `false`
/// aborts the enumeration (early exit for negative containment).
pub fn for_each_embedding<F: FnMut(&SummaryEmbedding) -> bool>(
    xam: &Xam,
    s: &Summary,
    visit: &mut F,
) -> bool {
    fn assign<F: FnMut(&SummaryEmbedding) -> bool>(
        xam: &Xam,
        s: &Summary,
        order: &[XamNodeId],
        idx: usize,
        cur: &mut SummaryEmbedding,
        visit: &mut F,
    ) -> bool {
        if idx == order.len() {
            return visit(cur);
        }
        let pn = order[idx];
        let parent = xam.parent(pn).unwrap();
        let parent_image = if parent == XamNodeId::TOP {
            None
        } else {
            cur[parent.index()]
        };
        for c in candidates(xam, pn, s, parent_image) {
            cur[pn.index()] = Some(c);
            if !assign(xam, s, order, idx + 1, cur, visit) {
                return false;
            }
        }
        cur[pn.index()] = None;
        true
    }
    // pre-order: parents before children (creation order guarantees this)
    let order: Vec<XamNodeId> = xam.pattern_nodes().collect();
    let mut cur: SummaryEmbedding = vec![None; xam.len()];
    assign(xam, s, &order, 0, &mut cur, visit)
}

/// The candidate summary images of the pattern's *first* pre-order node
/// (whose parent is `⊤`). The parallel engine partitions this list
/// across workers: each worker enumerates the embeddings rooted at its
/// share via [`for_each_embedding_from`], and the union over all
/// candidates is exactly the enumeration of [`for_each_embedding`].
pub fn root_candidates(xam: &Xam, s: &Summary) -> Vec<SummaryNodeId> {
    match xam.pattern_nodes().next() {
        Some(first) => candidates(xam, first, s, None),
        None => Vec::new(),
    }
}

/// As [`for_each_embedding`], but with the first pre-order pattern
/// node's image pinned to `first` (which must come from
/// [`root_candidates`]). Used to split the enumeration across workers.
pub fn for_each_embedding_from<F: FnMut(&SummaryEmbedding) -> bool>(
    xam: &Xam,
    s: &Summary,
    first: SummaryNodeId,
    visit: &mut F,
) -> bool {
    fn assign<F: FnMut(&SummaryEmbedding) -> bool>(
        xam: &Xam,
        s: &Summary,
        order: &[XamNodeId],
        idx: usize,
        cur: &mut SummaryEmbedding,
        visit: &mut F,
    ) -> bool {
        if idx == order.len() {
            return visit(cur);
        }
        let pn = order[idx];
        let parent = xam.parent(pn).unwrap();
        let parent_image = if parent == XamNodeId::TOP {
            None
        } else {
            cur[parent.index()]
        };
        for c in candidates(xam, pn, s, parent_image) {
            cur[pn.index()] = Some(c);
            if !assign(xam, s, order, idx + 1, cur, visit) {
                return false;
            }
        }
        cur[pn.index()] = None;
        true
    }
    let order: Vec<XamNodeId> = xam.pattern_nodes().collect();
    if order.is_empty() {
        return visit(&vec![None; xam.len()]);
    }
    let mut cur: SummaryEmbedding = vec![None; xam.len()];
    cur[order[0].index()] = Some(first);
    assign(xam, s, &order, 1, &mut cur, visit)
}

/// Collect all strict embeddings (convenience wrapper).
pub fn embeddings(xam: &Xam, s: &Summary) -> Vec<SummaryEmbedding> {
    let mut out = Vec::new();
    for_each_embedding(xam, s, &mut |e| {
        out.push(e.clone());
        true
    });
    out
}

/// The *path annotation* of a pattern node (Definition 4.3.1): the set of
/// summary nodes it maps to under some embedding.
pub fn path_annotation(xam: &Xam, s: &Summary, pn: XamNodeId) -> HashSet<SummaryNodeId> {
    let mut out = HashSet::new();
    for_each_embedding(xam, s, &mut |e| {
        if let Some(sn) = e[pn.index()] {
            out.insert(sn);
        }
        true
    });
    out
}

/// Path annotations of *every* pattern node (indexed by XAM node index,
/// `⊤`'s slot empty), computed in one enumeration pass — the rewriter
/// needs all of them, and a pass per node repeats the identical
/// enumeration `|p|` times.
pub fn path_annotations_all(xam: &Xam, s: &Summary) -> Vec<HashSet<SummaryNodeId>> {
    let mut out: Vec<HashSet<SummaryNodeId>> = vec![HashSet::new(); xam.len()];
    for_each_embedding(xam, s, &mut |e| {
        for n in xam.pattern_nodes() {
            if let Some(sn) = e[n.index()] {
                out[n.index()].insert(sn);
            }
        }
        true
    });
    out
}

/// A node of a canonical tree.
#[derive(Debug, Clone)]
pub struct CanNode {
    /// The summary node this canonical node stands on (its path).
    pub summary: SummaryNodeId,
    pub parent: Option<usize>,
    pub children: Vec<usize>,
    /// Depth within the canonical tree (root = 1).
    pub depth: u16,
    /// The decoration formula: the pattern node's value formula for
    /// distinguished nodes, `T` for chain nodes (§4.3.2).
    pub formula: Formula,
}

/// A canonical tree `t_e ∈ mod_S(p)` (Definition in §4.3.1).
#[derive(Debug, Clone)]
pub struct CanonicalTree {
    pub nodes: Vec<CanNode>,
    /// For each pattern node (by XAM index): the canonical node it is
    /// distinguished on (`None` for `⊤`, or for pattern nodes erased by an
    /// optional-edge erasure set `F`).
    pub distinguished: Vec<Option<usize>>,
    /// The return tuple: summary nodes of the pattern's return nodes
    /// (`None` = `⊥` under erased optional edges).
    pub return_tuple: Vec<Option<SummaryNodeId>>,
}

impl CanonicalTree {
    pub fn root(&self) -> usize {
        0
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Structural key for duplicate elimination in `mod_S(p)`: a 64-bit
    /// order-canonical hash (children sorted by subtree hash) combined
    /// with the return tuple. Collisions are astronomically unlikely at
    /// model sizes of a few thousand trees.
    pub fn key(&self) -> u64 {
        fn mix(h: u64, v: u64) -> u64 {
            // splitmix64-style mixing
            let mut z = h ^ v.wrapping_mul(0x9E3779B97F4A7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
        fn formula_hash(f: &Formula) -> u64 {
            use std::collections::hash_map::DefaultHasher;
            use std::hash::{Hash, Hasher};
            if *f == Formula::True {
                return 0;
            }
            let mut h = DefaultHasher::new();
            format!("{f}").hash(&mut h);
            h.finish() | 1
        }
        fn rec(t: &CanonicalTree, n: usize) -> u64 {
            let mut h = mix(0x5151_0A0A, t.nodes[n].summary.0 as u64 + 1);
            h = mix(h, formula_hash(&t.nodes[n].formula));
            let mut kids: Vec<u64> = t.nodes[n].children.iter().map(|&c| rec(t, c)).collect();
            kids.sort_unstable();
            for k in kids {
                h = mix(h, k);
            }
            h
        }
        let mut h = rec(self, 0);
        for r in &self.return_tuple {
            h = mix(h, r.map(|s| s.0 as u64 + 2).unwrap_or(1));
        }
        h
    }

    /// Is canonical node `a` an ancestor of `b`?
    pub fn is_ancestor(&self, a: usize, b: usize) -> bool {
        let mut cur = self.nodes[b].parent;
        while let Some(c) = cur {
            if c == a {
                return true;
            }
            cur = self.nodes[c].parent;
        }
        false
    }
}

/// Build the canonical tree of one embedding, optionally erasing the
/// subtrees under the optional-edge erasure set `erase` (pattern node ids
/// whose subtree is dropped; must be lower ends of optional edges).
pub fn canonical_tree(
    xam: &Xam,
    s: &Summary,
    e: &SummaryEmbedding,
    erase: &HashSet<XamNodeId>,
) -> CanonicalTree {
    let rets = xam.return_nodes();
    canonical_tree_with_rets(xam, s, e, erase, &rets)
}

/// As [`canonical_tree`], but with an explicit return-node list — the
/// rewriter aligns a rewriting pattern's return order with the query's.
pub fn canonical_tree_with_rets(
    xam: &Xam,
    s: &Summary,
    e: &SummaryEmbedding,
    erase: &HashSet<XamNodeId>,
    rets: &[XamNodeId],
) -> CanonicalTree {
    let mut t = CanonicalTree {
        nodes: Vec::new(),
        distinguished: vec![None; xam.len()],
        return_tuple: Vec::new(),
    };
    // which pattern nodes survive the erasure (a node is erased if it or
    // any ancestor is in `erase`)
    let mut alive = vec![true; xam.len()];
    for n in xam.pattern_nodes() {
        let erased_here = erase.contains(&n);
        let parent_alive = xam.parent(n).map(|p| alive[p.index()]).unwrap_or(true);
        alive[n.index()] = parent_alive && !erased_here;
    }
    // insert pattern nodes in pre-order, adding the summary chains
    for n in xam.pattern_nodes() {
        if !alive[n.index()] {
            continue;
        }
        let sn = e[n.index()].expect("strict embedding");
        let parent = xam.parent(n).unwrap();
        if parent == XamNodeId::TOP {
            // chain from the summary root down to sn
            let chain = summary_chain(s, None, sn);
            let mut prev: Option<usize> = if t.nodes.is_empty() {
                None
            } else {
                // multiple ⊤ children: root the chains at the same
                // canonical root if they share the summary root
                Some(t.root())
            };
            for (i, &cs) in chain.iter().enumerate() {
                if i == 0 {
                    if t.nodes.is_empty() {
                        t.nodes.push(CanNode {
                            summary: cs,
                            parent: None,
                            children: Vec::new(),
                            depth: 1,
                            formula: Formula::True,
                        });
                        prev = Some(0);
                    } else {
                        prev = Some(t.root());
                    }
                    continue;
                }
                let idx = push_child(&mut t, prev.unwrap(), cs, Formula::True);
                prev = Some(idx);
            }
            let last = prev.unwrap();
            finish_distinguished(xam, &mut t, n, last);
        } else {
            let panchor = t.distinguished[parent.index()].expect("parent placed first");
            // chain strictly below the parent's summary node
            let chain = summary_chain(s, Some(t.nodes[panchor].summary), sn);
            let mut prev = panchor;
            for &cs in &chain {
                prev = push_child(&mut t, prev, cs, Formula::True);
            }
            finish_distinguished(xam, &mut t, n, prev);
        }
    }
    // return tuple
    for &r in rets {
        if alive[r.index()] {
            t.return_tuple.push(e[r.index()]);
        } else {
            t.return_tuple.push(None);
        }
    }
    t
}

fn push_child(t: &mut CanonicalTree, parent: usize, summary: SummaryNodeId, f: Formula) -> usize {
    let depth = t.nodes[parent].depth + 1;
    let idx = t.nodes.len();
    t.nodes.push(CanNode {
        summary,
        parent: Some(parent),
        children: Vec::new(),
        depth,
        formula: f,
    });
    t.nodes[parent].children.push(idx);
    idx
}

fn finish_distinguished(xam: &Xam, t: &mut CanonicalTree, n: XamNodeId, can_idx: usize) {
    t.distinguished[n.index()] = Some(can_idx);
    // carry the decoration (value formula) onto the distinguished node;
    // conflicting formulas on a shared summary node stay on separate
    // canonical nodes because each pattern node got its own chain
    let f = xam.node(n).value_predicate.clone();
    if f != Formula::True {
        let merged = std::mem::replace(&mut t.nodes[can_idx].formula, Formula::True);
        t.nodes[can_idx].formula = merged.and(f);
    }
}

/// The summary chain from `from` (exclusive; `None` = above the root) down
/// to `to` (inclusive), top-down.
fn summary_chain(
    s: &Summary,
    from: Option<SummaryNodeId>,
    to: SummaryNodeId,
) -> Vec<SummaryNodeId> {
    let mut chain = Vec::new();
    let mut cur = Some(to);
    while let Some(c) = cur {
        if Some(c) == from {
            break;
        }
        chain.push(c);
        cur = s.parent(c);
    }
    chain.reverse();
    chain
}

/// The optional-edge erasure sets of a pattern: all subsets of lower ends
/// of optional edges (§4.3.2). The empty set is included.
pub fn erasure_sets(xam: &Xam) -> Vec<HashSet<XamNodeId>> {
    let optional: Vec<XamNodeId> = xam
        .pattern_nodes()
        .filter(|&n| xam.node(n).edge.sem.is_optional())
        .collect();
    let mut out = Vec::new();
    // cap the subset blowup at 2^8 erasure sets: beyond that the model is
    // enumerated on a subset lattice prefix (the paper's optional-edge
    // experiment uses patterns whose optional count stays single-digit)
    let m = optional.len().min(8);
    for mask in 0..(1u32 << m) {
        let mut set = HashSet::new();
        for (i, &n) in optional.iter().take(m).enumerate() {
            if mask & (1 << i) != 0 {
                set.insert(n);
            }
        }
        out.push(set);
    }
    out
}

/// Statistics of a canonical-model enumeration (for the experiments).
#[derive(Debug, Clone, Copy, Default)]
pub struct ModelStats {
    /// `|mod_S(p)|` after duplicate elimination.
    pub size: usize,
    /// Number of raw embeddings enumerated.
    pub embeddings: usize,
}

/// Materialize the full canonical model `mod_S(p)` (duplicate-free),
/// including optional-edge erasures. For an erasure set `F`, the tree
/// `t_{e,F}` is kept only if the full pattern still evaluates non-empty on
/// it — which the optional semantics guarantees here because erased
/// subtrees are exactly optional ones.
pub fn canonical_model(xam: &Xam, s: &Summary) -> (Vec<CanonicalTree>, ModelStats) {
    let mut stats = ModelStats::default();
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    let erasures = erasure_sets(xam);
    for_each_embedding(xam, s, &mut |e| {
        stats.embeddings += 1;
        for f in &erasures {
            let t = canonical_tree(xam, s, e, f);
            let key = t.key();
            if seen.contains(&key) {
                continue;
            }
            // §4.3.2: t_{e,F} joins the model only if the pattern still
            // produces its (⊥-padded) return tuple on the erased tree —
            // erasing an optional branch whose match survives via another
            // chain would contradict the ⊥-minimality of optional
            // embeddings.
            if !f.is_empty() && !crate::pattern_eval::accepts_tuple(xam, s, &t, &t.return_tuple) {
                continue;
            }
            seen.insert(key);
            out.push(t);
        }
        true
    });
    stats.size = out.len();
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use summary::Summary;
    use xam_core::parse_xam;
    use xmltree::parse_document;

    fn fig47_summary() -> Summary {
        // the summary of Figure 4.7: a root with nested b/c structure
        // /a {1:/a, 2:/a/b, 3:/a/b/c(?), ...} — approximate the figure with
        // a recursive-ish document
        let doc = parse_document("<a><b><c><b><e/></b></c><e/></b><d><b><e/></b></d></a>").unwrap();
        Summary::of_document(&doc)
    }

    #[test]
    fn embeddings_respect_labels_and_axes() {
        let s = fig47_summary();
        let p = parse_xam("//b[id:s]{ //e[id:s] }").unwrap();
        let es = embeddings(&p, &s);
        assert!(!es.is_empty());
        for e in &es {
            let b = e[1].unwrap();
            let ee = e[2].unwrap();
            assert_eq!(s.label(b), "b");
            assert_eq!(s.label(ee), "e");
            assert!(s.is_ancestor_or_self(b, ee) && b != ee);
        }
    }

    #[test]
    fn child_from_top_reaches_root_only() {
        let s = fig47_summary();
        let p = parse_xam("/a[id:s]").unwrap();
        assert_eq!(embeddings(&p, &s).len(), 1);
        let p = parse_xam("/b[id:s]").unwrap();
        assert_eq!(embeddings(&p, &s).len(), 0);
    }

    #[test]
    fn star_nodes_match_any_element() {
        let s = fig47_summary();
        let p = parse_xam("//*[id:s]").unwrap();
        assert_eq!(embeddings(&p, &s).len(), s.len());
    }

    #[test]
    fn canonical_tree_has_summary_chains() {
        let s = fig47_summary();
        let p = parse_xam("//a{ //e[id:s] }").unwrap();
        let (model, stats) = canonical_model(&p, &s);
        assert_eq!(stats.size, model.len());
        assert!(!model.is_empty());
        for t in &model {
            // root of the canonical tree is the summary root (a)
            assert_eq!(t.nodes[0].summary, s.root());
            // every non-root node's summary parent matches its tree parent
            for (i, n) in t.nodes.iter().enumerate().skip(1) {
                let tp = n.parent.unwrap();
                assert_eq!(s.parent(n.summary), Some(t.nodes[tp].summary), "node {i}");
            }
        }
    }

    #[test]
    fn duplicate_embeddings_collapse() {
        // //a//*//e with * on different intermediate nodes can produce the
        // same canonical tree; the model is duplicate-free
        let s = fig47_summary();
        let p = parse_xam("//a{ //*{ //e[id:s] } }").unwrap();
        let (model, stats) = canonical_model(&p, &s);
        assert!(stats.embeddings >= model.len());
        let mut keys = HashSet::new();
        for t in &model {
            assert!(keys.insert(t.key()));
        }
    }

    #[test]
    fn optional_edges_multiply_model() {
        let s = fig47_summary();
        let strict = parse_xam("//b[id:s]{ //e[id:s] }").unwrap();
        let optional = parse_xam("//b[id:s]{ //? e[id:s] }").unwrap();
        let (m1, _) = canonical_model(&strict, &s);
        let (m2, _) = canonical_model(&optional, &s);
        assert!(m2.len() > m1.len());
        // some erased trees have ⊥ in the return tuple
        assert!(m2.iter().any(|t| t.return_tuple.contains(&None)));
    }

    #[test]
    fn unsatisfiable_formula_kills_pattern() {
        let s = fig47_summary();
        let p = parse_xam("//e[id:s,val>5,val<2]").unwrap();
        assert!(embeddings(&p, &s).is_empty());
    }

    #[test]
    fn path_annotations() {
        let s = fig47_summary();
        let p = parse_xam("//b{ //e[id:s] }").unwrap();
        let ann = path_annotation(&p, &s, xam_core::XamNodeId(2));
        assert!(!ann.is_empty());
        for sn in &ann {
            assert_eq!(s.label(*sn), "e");
        }
    }
}
