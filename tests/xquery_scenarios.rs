//! Additional XQuery scenarios across document generators: parser corner
//! cases, deeply nested FLWR blocks, and XMark-flavoured workloads.

use xmltree::generate;

#[test]
fn three_level_nested_flwr() {
    let doc = generate::xmark(2, 41);
    let q = r#"for $i in doc("x")//open_auction return
               <a>{$i/initial/text()},
                 for $b in $i/bidder return
                 <b>{$b/date},
                   for $inc in $b/increase return <i>{$inc/text()}</i>
                 </b>
               </a>"#;
    let out = xquery::execute_query(q, &doc).unwrap();
    let auctions = doc
        .elements()
        .filter(|&n| doc.label(n) == "open_auction")
        .count();
    assert_eq!(out.len(), auctions);
    // every bidder has a date and an increase in the generator
    assert!(out.iter().all(|o| o.contains("<b>")));
    assert!(out.iter().any(|o| o.contains("<i>")));
}

#[test]
fn pattern_extraction_stays_single_across_three_levels() {
    let q = xquery::parse_query(
        r#"for $i in doc("x")//open_auction return
           <a>{for $b in $i/bidder return
             <b>{for $inc in $b/increase return <i>{$inc/text()}</i>}</b>}</a>"#,
    )
    .unwrap();
    let ex = xquery::extract_patterns(&q).unwrap();
    assert_eq!(ex.patterns.len(), 1, "all three levels share one pattern");
    assert_eq!(ex.patterns[0].pattern_size(), 3);
}

#[test]
fn attribute_navigation_and_predicates() {
    let doc = generate::xmark(2, 42);
    // items in a specific category via attribute value
    let out = xquery::execute_query(
        r#"for $i in doc("x")//incategory where $i/@category = "category3"
           return <hit></hit>"#,
        &doc,
    )
    .unwrap();
    // ground truth
    let expect = doc
        .attributes()
        .filter(|&a| doc.label(a) == "category" && doc.value(a) == "category3")
        .filter(|&a| doc.label(doc.parent(a).unwrap()) == "incategory")
        .count();
    assert_eq!(out.len(), expect);
}

#[test]
fn star_steps_and_descendant_axes() {
    let doc = generate::bib_sample();
    let out = xquery::execute_query(r#"doc("d")/library/*/title"#, &doc).unwrap();
    assert_eq!(out.len(), 3); // 2 books + 1 thesis
    let out = xquery::execute_query(r#"doc("d")//*/author"#, &doc).unwrap();
    assert_eq!(out.len(), 4);
}

#[test]
fn mixed_concat_in_return() {
    let doc = generate::bib_sample();
    let out = xquery::execute_query(
        r#"for $b in doc("d")//book return <r>{$b/title/text()}, {$b/@year}</r>"#,
        &doc,
    )
    .unwrap();
    assert_eq!(out.len(), 2);
    assert!(out[0].contains("Data on the Web"));
    assert!(out[0].contains("1999"));
    assert!(!out[1].contains("1999")); // second book has no year
}

#[test]
fn deep_paths_on_shakespeare_like_data() {
    let doc = generate::shakespeare(2, 9);
    let out = xquery::execute_query(r#"doc("d")//ACT/SCENE/SPEECH/SPEAKER"#, &doc).unwrap();
    assert!(!out.is_empty());
    let speakers = doc
        .elements()
        .filter(|&n| doc.label(n) == "SPEAKER")
        .count();
    assert_eq!(out.len(), speakers);
}

#[test]
fn queries_on_dblp_like_data() {
    let doc = generate::dblp(50, 11);
    let out = xquery::execute_query(
        r#"for $a in doc("dblp")//article return <t>{$a/title/text()}</t>"#,
        &doc,
    )
    .unwrap();
    let articles = doc
        .elements()
        .filter(|&n| doc.label(n) == "article")
        .count();
    assert_eq!(out.len(), articles);
}

#[test]
fn unparsable_and_unsupported_queries_error_cleanly() {
    let doc = generate::bib_sample();
    for bad in [
        "",
        "for $x in",
        "<a>{</a>",
        "for $x in doc(\"d\")//a return $y/b", // unbound variable
    ] {
        assert!(
            xquery::execute_query(bad, &doc).is_err(),
            "query `{bad}` must error"
        );
    }
}
