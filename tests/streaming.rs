//! End-to-end tests of the streaming `Uload::query` API: streamed rows
//! equal materialized `answer` rows at every batch size, early
//! termination cancels the cursor tree, the stream profile carries the
//! executor's counters, and the typed `Uload::execute_direct` façade
//! behaves.

use uload::prelude::*;

const QUERY: &str = r#"for $x in doc("X")//item return <res>{$x/name/text()}</res>"#;
const VIEW: &str = "//item[id:s]{ /n? name1:name[val] }";

fn engine(doc: &Document, batch_size: usize, profiling: bool) -> Uload {
    let mut u = Uload::builder()
        .document(doc)
        .batch_size(batch_size)
        .profiling(profiling)
        .build()
        .unwrap();
    u.add_view_text("V", VIEW, doc).unwrap();
    u
}

#[test]
fn streamed_rows_equal_answer_rows_at_every_batch_size() {
    let doc = generate::xmark(2, 13);
    let base = engine(&doc, 1024, false);
    let (want, used) = base.answer(QUERY, &doc).unwrap();
    assert!(want.len() > 2, "workload must produce several rows");
    let n = want.len();
    for bs in [1, 2, n - 1, n, n + 1, 1023, 1024, 1025] {
        let u = engine(&doc, bs, false);
        let mut results = u.query(QUERY, &doc).unwrap();
        assert_eq!(results.batch_size(), bs);
        assert_eq!(results.rewritings().len(), used.len());
        let got: Vec<String> = results.by_ref().collect::<Result<_>>().unwrap();
        assert_eq!(got, want, "batch_size {bs}");
        assert_eq!(results.rows_emitted() as usize, n);
    }
}

#[test]
fn next_batch_streams_the_same_rows() {
    let doc = generate::xmark(2, 13);
    let u = engine(&doc, 4, false);
    let (want, _) = u.answer(QUERY, &doc).unwrap();
    let mut results = u.query(QUERY, &doc).unwrap();
    let mut got = Vec::new();
    while let Some(batch) = results.next_batch().unwrap() {
        assert!(!batch.is_empty() || got.is_empty());
        for t in &batch.tuples {
            got.push(t.get(0).as_str().unwrap_or("").to_string());
        }
    }
    assert_eq!(got, want);
}

#[test]
fn early_termination_closes_the_cursor_tree() {
    let doc = generate::xmark(3, 13);
    let u = engine(&doc, 1, false);
    let (all, _) = u.answer(QUERY, &doc).unwrap();
    assert!(all.len() > 5);

    let mut results = u.query(QUERY, &doc).unwrap();
    let first: Vec<String> = results.by_ref().take(3).collect::<Result<_>>().unwrap();
    assert_eq!(first, all[..3].to_vec());
    let rows_when_stopped = results.rows_emitted();
    results.close();
    // closing is idempotent and ends the stream for good
    results.close();
    assert!(results.next().is_none());
    assert!(results.next_batch().unwrap().is_none());
    assert_eq!(results.rows_emitted(), rows_when_stopped);
    // with one-row batches, stopping after 3 rows must not have drained
    // the whole result set through the root
    assert!(
        rows_when_stopped < all.len() as u64,
        "early close pulled all {} rows",
        all.len()
    );
}

#[test]
fn dropping_results_mid_stream_is_clean() {
    let doc = generate::xmark(2, 13);
    let u = engine(&doc, 1, false);
    let mut results = u.query(QUERY, &doc).unwrap();
    let _ = results.next().unwrap().unwrap();
    drop(results); // Drop must close the tree without panicking
}

#[test]
fn stream_profile_reports_executor_counters() {
    let doc = generate::xmark(2, 13);
    let u = engine(&doc, 8, true);
    let mut results = u.query(QUERY, &doc).unwrap();
    let n = results.by_ref().count() as u64;
    let prof = results.stream_profile();
    assert_eq!(prof.rows, n);
    assert_eq!(prof.batch_size, 8);
    assert!(prof.batches >= n / 8);
    assert!(prof.peak_resident_tuples > 0);
    // profiling engine → per-operator entries, pre-order (root first)
    assert!(!prof.ops.is_empty());
    assert_eq!(prof.ops[0].rows, n);
    let json = prof.to_json().to_string_compact();
    assert!(json.contains("peak_resident_tuples"));

    // without profiling, the totals stay live but per-op entries are off
    let plain = engine(&doc, 8, false);
    let mut r2 = plain.query(QUERY, &doc).unwrap();
    let n2 = r2.by_ref().count() as u64;
    assert_eq!(n2, n);
    let p2 = r2.stream_profile();
    assert_eq!(p2.rows, n);
    assert!(p2.ops.is_empty());
}

#[test]
fn query_honors_twigstack_toggle() {
    let doc = generate::xmark(2, 13);
    let run = |twig: bool| {
        let mut u = Uload::builder()
            .document(&doc)
            .use_twigstack(twig)
            .batch_size(3)
            .build()
            .unwrap();
        u.add_view_text("V", VIEW, &doc).unwrap();
        let results = u.query(QUERY, &doc).unwrap();
        results.collect::<Result<Vec<String>>>().unwrap()
    };
    let with_twig = run(true);
    let without = run(false);
    assert!(!with_twig.is_empty());
    assert_eq!(with_twig, without);
}

#[test]
fn query_surfaces_planning_errors_before_streaming() {
    let doc = generate::bib_sample();
    let u = Uload::builder().document(&doc).build().unwrap();
    // no views registered: the rewriting phase must fail, not streaming
    assert!(matches!(
        u.query(r#"doc("d")//book/title"#, &doc),
        Err(Error::NoRewriting { .. })
    ));
}

#[test]
fn batch_size_zero_is_rejected_at_build_time() {
    let doc = generate::bib_sample();
    assert!(matches!(
        Uload::builder().document(&doc).batch_size(0).build(),
        Err(Error::Config(_))
    ));
}

#[test]
fn execute_query_returns_typed_output_with_stable_fingerprint() {
    let doc = generate::bib_sample();
    let q = r#"for $b in doc("d")//book return <r>{$b/title}</r>"#;
    let out = Uload::execute_direct(q, &doc).unwrap();
    assert_eq!(out.items.len(), 2);
    assert!(out.items[0].xml.contains("<title>Data on the Web</title>"));
    // the fingerprint is a function of the plan: same query, same value
    let again = Uload::execute_direct(q, &doc).unwrap();
    assert_eq!(out.plan_fingerprint, again.plan_fingerprint);
    assert_eq!(out, again);
    // a different query plans differently
    let other = Uload::execute_direct(r#"doc("d")//book/title"#, &doc).unwrap();
    assert_ne!(out.plan_fingerprint, other.plan_fingerprint);
}

#[test]
fn into_strings_preserves_items_in_order() {
    let doc = generate::bib_sample();
    let q = r#"for $b in doc("d")//book return <r>{$b/title}</r>"#;
    let out = Uload::execute_direct(q, &doc).unwrap();
    let items: Vec<String> = out.items.iter().map(|i| i.xml.clone()).collect();
    assert_eq!(out.into_strings(), items);
}
