//! `EXPLAIN ANALYZE` integration tests: hand-computed profiles on a
//! fixed bib QEP, profiled-equals-plain on random twig workloads, and
//! the JSON contract against `schemas/query_profile.schema.json`.

use proptest::prelude::*;
use uload::prelude::*;

/// The engine used throughout: join-only rewriting (navigation
/// compensation off) over two single-node views, so the executed plan is
/// a structural join that fuses into a twig.
fn bib_engine(doc: &Document, use_twigstack: bool) -> Uload {
    let mut cfg = EngineConfig {
        profiling: true,
        use_twigstack,
        ..Default::default()
    };
    cfg.rewrite.allow_navigation = false;
    let mut u = Uload::builder().document(doc).config(cfg).build().unwrap();
    u.add_view_text("v_books", "//book[id:s]", doc).unwrap();
    u.add_view_text("v_titles", "//title[id:s,val]", doc)
        .unwrap();
    u
}

#[test]
fn bib_qep_profile_hand_computed() {
    let doc = generate::bib_sample();
    let u = bib_engine(&doc, true);
    let q = r#"doc("d")//book/title"#;
    let (out, used, profile) = u.answer_profiled(q, &doc).unwrap();

    // hand-computed cardinalities on the fixed bib sample
    let books = u.store().relation("v_books").unwrap().len();
    let titles = u.store().relation("v_titles").unwrap().len();
    assert_eq!(books, 2, "bib has two books");
    assert_eq!(out.len(), 2, "each book contributes one title");
    assert_eq!(used[0].views_used, vec!["v_books", "v_titles"]);
    assert_eq!(profile.plan.actual_rows as usize, out.len());

    // the executed QEP: XmlTemplate → CastSchema → Project° → TwigJoin
    // over (Rename→Scan(v_books), Fetch→Rename→Scan(v_titles)) = 9 nodes
    assert_eq!(profile.plan.node_count(), 9, "\n{}", profile.render());
    let mut leaves = Vec::new();
    collect_leaves(&profile.plan, &mut leaves);
    assert_eq!(leaves.len(), 2);
    for leaf in &leaves {
        assert!(leaf.op.starts_with("Scan("), "leaf {}", leaf.op);
    }
    let leaf_rows: Vec<usize> = leaves.iter().map(|l| l.actual_rows as usize).collect();
    assert!(leaf_rows.contains(&books) && leaf_rows.contains(&titles));

    // the twig node recorded kernel work and carries both estimates
    let twig = find_op(&profile.plan, "TwigJoin").expect("fused twig in the plan");
    assert!(twig.metrics.comparisons > 0);
    assert!(twig.est_cost > 0.0 && twig.est_rows > 0.0);
    assert_eq!(twig.children.len(), 2);

    // parent times include children (per-node clocks are monotone up)
    check_time_monotone(&profile.plan);

    // phase timings cover the whole lifecycle
    let names: Vec<&str> = profile.phases.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(names, ["parse", "extract", "rewrite", "plan", "eval"]);

    // the profile also carries the pipelined executor's stream report:
    // same rows, per-operator counters in pre-order (root first)
    let streamed = profile.streamed.as_ref().expect("streamed profile");
    assert_eq!(streamed.rows as usize, out.len());
    assert!(streamed.batches >= 1);
    assert!(streamed.peak_resident_tuples > 0);
    assert_eq!(streamed.ops.len(), 9, "one entry per QEP operator");
    assert_eq!(streamed.ops[0].rows, streamed.rows);
    assert!(streamed
        .ops
        .iter()
        .any(|o| o.op.starts_with("TwigJoin") && o.metrics.comparisons > 0));
}

fn collect_leaves<'p>(n: &'p PlanNodeProfile, out: &mut Vec<&'p PlanNodeProfile>) {
    if n.children.is_empty() {
        out.push(n);
    }
    for c in &n.children {
        collect_leaves(c, out);
    }
}

fn find_op<'p>(n: &'p PlanNodeProfile, prefix: &str) -> Option<&'p PlanNodeProfile> {
    if n.op.starts_with(prefix) {
        return Some(n);
    }
    n.children.iter().find_map(|c| find_op(c, prefix))
}

fn check_time_monotone(n: &PlanNodeProfile) {
    let child_ns: u64 = n.children.iter().map(|c| c.time_ns).sum();
    assert!(
        n.time_ns >= child_ns,
        "{}: {} < sum of children {}",
        n.op,
        n.time_ns,
        child_ns
    );
    for c in &n.children {
        check_time_monotone(c);
    }
}

#[test]
fn arm_telemetry_is_consistent() {
    let doc = generate::bib_sample();
    for twig_on in [true, false] {
        let u = bib_engine(&doc, twig_on);
        let (_, _, profile) = u.answer_profiled(r#"doc("d")//book/title"#, &doc).unwrap();
        let arm = profile.arm.as_ref().expect("join plan has a twig arm");
        assert_eq!(arm.chosen, if twig_on { "twig" } else { "cascade" });
        assert!(arm.actual_chosen_ns > 0 && arm.actual_alternative_ns > 0);
        // the flag is exactly the ≥2× rule
        assert_eq!(
            arm.mispredicted,
            arm.actual_chosen_ns >= 2 * arm.actual_alternative_ns
        );
        // last_profile() returns what answer_profiled returned
        assert_eq!(u.last_profile().as_ref(), Some(&profile));
    }
}

#[test]
fn cache_stats_expose_per_map_occupancy() {
    let doc = generate::bib_sample();
    let u = bib_engine(&doc, true);
    u.answer_profiled(r#"doc("d")//book/title"#, &doc).unwrap();
    let stats = u.cache_stats().expect("default engine has a cache");
    assert!(stats.hits + stats.misses > 0, "{stats:?}");
    assert_eq!(
        stats.entries,
        stats.verdict_entries + stats.model_entries + stats.annotation_entries,
        "{stats:?}"
    );
    assert!(stats.entries > 0, "{stats:?}");
    // the profile snapshot mirrors the engine counters it was taken from
    let cache = u.last_profile().unwrap().cache.expect("cache in profile");
    assert_eq!(cache.verdict_entries, stats.verdict_entries);
    assert_eq!(cache.entries(), stats.entries);
}

#[test]
fn profile_json_matches_checked_in_schema() {
    let doc = generate::bib_sample();
    let u = bib_engine(&doc, true);
    let (_, _, profile) = u.answer_profiled(r#"doc("d")//book/title"#, &doc).unwrap();

    let schema_text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/schemas/query_profile.schema.json"
    ))
    .expect("checked-in schema");
    let schema = uload::json::parse(&schema_text).expect("schema parses");

    // the in-memory value validates, and so does its serialized round
    // trip (both pretty and compact)
    let value = profile.to_json();
    uload::json::validate(&value, &schema).expect("profile matches schema");
    for text in [value.to_string_pretty(), value.to_string_compact()] {
        let reparsed = uload::json::parse(&text).expect("emitted JSON parses");
        assert_eq!(reparsed, value);
        uload::json::validate(&reparsed, &schema).expect("round trip matches schema");
    }

    // an uncached engine emits "cache": null and still validates
    let mut cfg = EngineConfig {
        profiling: true,
        cache_capacity: 0,
        ..Default::default()
    };
    cfg.rewrite.allow_navigation = false;
    let mut u2 = Uload::builder().document(&doc).config(cfg).build().unwrap();
    u2.add_view_text("v_books", "//book[id:s]", &doc).unwrap();
    u2.add_view_text("v_titles", "//title[id:s,val]", &doc)
        .unwrap();
    let (_, _, p2) = u2.answer_profiled(r#"doc("d")//book/title"#, &doc).unwrap();
    assert!(p2.cache.is_none());
    uload::json::validate(&p2.to_json(), &schema).expect("null cache matches schema");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Profiled execution returns exactly the relation plain execution
    /// returns, on random XMark twig patterns, and the profile tree
    /// mirrors the plan shape node for node.
    #[test]
    fn profiled_execution_matches_plain(
        spec in prop::collection::vec((0usize..10, 0usize..8, 0usize..2), 2..6),
    ) {
        let doc = generate::xmark(3, 7);
        let pool: [&'static str; 10] =
            ["site", "regions", "item", "name", "description",
             "parlist", "listitem", "text", "keyword", "mailbox"];
        let mut w = uload_bench::experiments::TwigWorkload {
            name: "prop".into(),
            labels: Vec::new(),
            parents: Vec::new(),
            axes: Vec::new(),
        };
        for (k, &(label, parent, child)) in spec.iter().enumerate() {
            w.labels.push(pool[label]);
            w.parents.push(if k == 0 { 0 } else { parent % k });
            w.axes.push(if child == 1 { algebra::Axis::Child } else { algebra::Axis::Descendant });
        }
        let idx = IdStreamIndex::build(&doc);
        let streams = w.streams(&idx);
        if streams.iter().any(|s| s.is_empty()) {
            return Ok(()); // label absent: no ids_* relation to scan
        }
        let cat = uload_bench::experiments::twig_catalog(&doc);
        let plan = w.twig_plan();
        let ev = Evaluator::new(&cat);
        let plain = ev.eval(&plan).unwrap();
        let (profiled, prof) = ev.eval_profiled(&plan).unwrap();
        prop_assert_eq!(&plain, &profiled, "profiled != plain on {:?}", w.labels);
        prop_assert_eq!(prof.node_count(), plan.size());
        prop_assert_eq!(prof.out_rows as usize, plain.len());
    }
}
