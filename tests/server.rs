//! Integration tests of the multi-client query server: concurrent
//! sessions sharing the versioned result cache (identical and
//! rewritten-equivalent query texts), graceful mid-stream cancellation
//! (explicit `CANCEL` and plain disconnect) releasing the `Residency`
//! budget, admission control bounding oversubscribed clients, and
//! document swaps invalidating the cache through the version key.

use std::time::{Duration, Instant};

use uload::json;
use uload::prelude::*;
use uload::server::RowEvent;

const QUERY: &str = r#"for $x in doc("X")//item return <res>{$x/name/text()}</res>"#;
/// Same plan as [`QUERY`] after parsing: whitespace and variable
/// spelling differ, the extracted pattern does not.
const QUERY_EQUIV: &str = r#"for   $y in doc("X")//item   return <res>{$y/name/text()}</res>"#;
const VIEW: &str = "//item[id:s]{ /n? name1:name[val] }";

fn engine_over(doc: &Document, batch_size: usize) -> Uload {
    let mut u = Uload::builder()
        .document(doc)
        .batch_size(batch_size)
        .cache_capacity(1024)
        .build()
        .unwrap();
    u.add_view_text("V", VIEW, doc).unwrap();
    u
}

fn start(doc: Document, batch_size: usize, config: ServerConfig) -> ServerHandle {
    let engine = engine_over(&doc, batch_size);
    Server::start(config, engine, DocumentHandle::new(doc)).unwrap()
}

fn wait_until(what: &str, mut ok: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !ok() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn equivalent_texts_share_a_fingerprint_and_a_cache_entry() {
    let server = start(generate::xmark(2, 13), 64, ServerConfig::default());
    let mut c = Client::connect(server.addr()).unwrap();

    let fp = c.prepare(QUERY).unwrap();
    let fp_equiv = c.prepare(QUERY_EQUIV).unwrap();
    assert_eq!(
        fp, fp_equiv,
        "equivalent texts must plan to one fingerprint"
    );
    assert_eq!(server.state().prepared_count(), 1);

    let cold = c.exec(fp).unwrap();
    assert!(!cold.cached && !cold.rows.is_empty());
    let warm = c.exec(fp_equiv).unwrap();
    assert!(warm.cached, "second execution must hit the result cache");
    assert_eq!(cold.rows, warm.rows);

    // the full-text QUERY path lands on the same cache entry too
    let via_query = c.query(QUERY_EQUIV).unwrap();
    assert!(via_query.cached);
    assert_eq!(via_query.fingerprint, fp);

    let stats = json::parse(&c.stats_json().unwrap()).unwrap();
    let rc = stats.get("result_cache").unwrap();
    assert_eq!(rc.get("hits").unwrap().as_f64().unwrap(), 2.0);
    assert_eq!(rc.get("misses").unwrap().as_f64().unwrap(), 1.0);
    c.quit().unwrap();
    server.shutdown();
    server.wait();
}

#[test]
fn concurrent_sessions_hit_the_shared_caches() {
    let server = start(generate::xmark(2, 13), 64, ServerConfig::default());
    let addr = server.addr().clone();

    // round 1: populate (exactly one session inserts; racing sessions
    // may each miss once). round 2: everyone must hit.
    let mut warm = Client::connect(&addr).unwrap();
    let baseline = warm.query(QUERY).unwrap();
    assert!(!baseline.cached);

    let clients: Vec<_> = (0..4)
        .map(|i| {
            let addr = addr.clone();
            let want = baseline.rows.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).unwrap();
                // alternate identical and rewritten-equivalent spellings
                let text = if i % 2 == 0 { QUERY } else { QUERY_EQUIV };
                let reply = c.query(text).unwrap();
                assert!(reply.cached, "client {i} missed a warm cache");
                assert_eq!(reply.rows, want, "client {i} rows diverged");
                c.quit().unwrap();
            })
        })
        .collect();
    for t in clients {
        t.join().unwrap();
    }

    // shared result cache: 1 miss (the warm-up), 4 hits
    let counters = server.state().result_cache().counters();
    assert_eq!(counters.hits, 4);
    assert_eq!(counters.misses, 1);
    assert_eq!(counters.entries, 1);

    // the rewriting layer's CanonicalCache served repeat preparations
    let stats = json::parse(&warm.stats_json().unwrap()).unwrap();
    let canonical = stats.get("canonical_cache").unwrap();
    assert!(
        canonical.get("hits").unwrap().as_f64().unwrap() > 0.0,
        "concurrent equivalent queries never hit the CanonicalCache"
    );
    warm.quit().unwrap();
    server.shutdown();
    server.wait();
}

#[test]
fn cancel_mid_stream_releases_budget_and_leaves_server_serving() {
    // one-row batches and a per-batch throttle → the stream is reliably
    // still in flight when the CANCEL lands
    let config = ServerConfig::default().with_stream_throttle(Duration::from_millis(20));
    let server = start(generate::xmark(3, 13), 1, config);
    let mut c = Client::connect(server.addr()).unwrap();
    let fp = c.prepare(QUERY).unwrap();

    c.start_exec(fp).unwrap();
    let mut seen = 0u64;
    // read a couple of rows, then cancel mid-stream
    let outcome = loop {
        match c.next_event().unwrap() {
            RowEvent::Row(_) => {
                seen += 1;
                if seen == 2 {
                    c.cancel().unwrap();
                }
            }
            other => break other,
        }
    };
    match outcome {
        RowEvent::Cancelled { rows } => assert!(rows >= 2, "cancel lost delivered rows"),
        other => panic!("expected CANCELLED, got {other:?}"),
    }

    // the admission permit must be back and the residency released
    wait_until("cancelled permit release", || {
        server.state().admission().in_use() == 0
    });

    // the cancelled request never memoized a partial result…
    assert_eq!(server.state().result_cache().counters().entries, 0);
    // …and the same session (and a fresh one) still get full answers
    let full = c.exec(fp).unwrap();
    assert!(!full.cached && full.rows.len() as u64 > 2);
    let mut c2 = Client::connect(server.addr()).unwrap();
    assert_eq!(c2.query(QUERY).unwrap().rows, full.rows);

    let stats = json::parse(&c.stats_json().unwrap()).unwrap();
    assert_eq!(stats.get("cancelled").unwrap().as_f64().unwrap(), 1.0);
    c.quit().unwrap();
    c2.quit().unwrap();
    server.shutdown();
    server.wait();
}

#[test]
fn dropped_session_mid_stream_releases_budget() {
    let config = ServerConfig::default().with_stream_throttle(Duration::from_millis(20));
    let server = start(generate::xmark(3, 13), 1, config);
    {
        let mut c = Client::connect(server.addr()).unwrap();
        let fp = c.prepare(QUERY).unwrap();
        c.start_exec(fp).unwrap();
        match c.next_event().unwrap() {
            RowEvent::Row(_) => {}
            other => panic!("expected a first row, got {other:?}"),
        }
        assert!(
            server.state().admission().in_use() > 0,
            "stream in flight must hold its admission permit"
        );
        // client dropped here, socket closes with the stream in flight
    }
    wait_until("disconnect permit release", || {
        server.state().admission().in_use() == 0
    });
    // the server is still healthy for other sessions
    let mut c2 = Client::connect(server.addr()).unwrap();
    assert!(!c2.query(QUERY).unwrap().rows.is_empty());
    c2.quit().unwrap();
    server.shutdown();
    server.wait();
}

#[test]
fn oversubscribed_clients_never_exceed_the_admission_budget() {
    // two admission slots, result cache off so every request executes
    let config = ServerConfig::default()
        .with_admission(2 * (1 << 18), 1 << 18)
        .with_result_cache(0, 0);
    let server = start(generate::xmark(2, 13), 16, config);
    let addr = server.addr().clone();

    let clients: Vec<_> = (0..6)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).unwrap();
                for _ in 0..3 {
                    assert!(!c.query(QUERY).unwrap().rows.is_empty());
                }
                c.quit().unwrap();
            })
        })
        .collect();
    for t in clients {
        t.join().unwrap();
    }

    let adm = server.state().admission();
    assert_eq!(adm.admitted_total(), 18, "all requests must have executed");
    assert!(
        adm.peak() <= adm.total(),
        "admission over-committed: peak {} > total {}",
        adm.peak(),
        adm.total()
    );
    assert_eq!(adm.in_use(), 0);
    server.shutdown();
    server.wait();
}

#[test]
fn per_query_budget_overrun_aborts_with_an_error() {
    // a 1-tuple ceiling no real join can stay under
    let config = ServerConfig::default()
        .with_admission(1, 1)
        .with_result_cache(0, 0);
    let server = start(generate::xmark(2, 13), 8, config);
    let mut c = Client::connect(server.addr()).unwrap();
    let err = c.query(QUERY).unwrap_err();
    assert!(
        err.to_string().contains("budget exceeded"),
        "expected a budget abort, got: {err}"
    );
    let stats = json::parse(&c.stats_json().unwrap()).unwrap();
    assert_eq!(stats.get("budget_aborts").unwrap().as_f64().unwrap(), 1.0);
    // budget released despite the abort
    assert_eq!(server.state().admission().in_use(), 0);
    c.quit().unwrap();
    server.shutdown();
    server.wait();
}

#[test]
fn document_swap_invalidates_through_the_version_key() {
    let server = start(generate::xmark(2, 13), 64, ServerConfig::default());
    let mut c = Client::connect(server.addr()).unwrap();
    let fp = c.prepare(QUERY).unwrap();
    let cold = c.exec(fp).unwrap();
    assert!(c.exec(fp).unwrap().cached);

    // same fingerprint, new version → the warm entry silently stops
    // matching; no explicit invalidation anywhere. (The rows themselves
    // still come from the engine's materialized views, so the point of
    // the version key is conservative invalidation: never serve a
    // memoized result attributed to a document that has been replaced.)
    let v2 = server.state().swap_document(generate::xmark(3, 17));
    let fresh = c.exec(fp).unwrap();
    assert!(!fresh.cached, "stale entry served across a document swap");
    assert_eq!(fresh.version, v2.0);
    assert_ne!(cold.version, fresh.version);
    // and the new version is itself cached now
    assert!(c.exec(fp).unwrap().cached);
    c.quit().unwrap();
    server.shutdown();
    server.wait();
}

#[test]
fn slow_query_lands_in_slowlog_with_profile_and_fast_one_does_not() {
    // one-row batches plus a per-batch throttle make the uncached
    // execution reliably cross the slow-query threshold; the cached
    // replay serves memoized rows at full speed and must stay out
    let config = ServerConfig::default()
        .with_stream_throttle(Duration::from_millis(10))
        .with_slowlog(Duration::from_millis(25), 16);
    let server = start(generate::xmark(2, 13), 1, config);
    let mut c = Client::connect(server.addr()).unwrap();
    let fp = c.prepare(QUERY).unwrap();

    let cold = c.exec(fp).unwrap();
    assert!(!cold.cached && cold.rows.len() >= 3);
    let warm = c.exec(fp).unwrap();
    assert!(warm.cached);

    let log = json::parse(&c.slowlog_json().unwrap()).unwrap();
    let entries = log.as_arr().unwrap();
    assert_eq!(
        entries.len(),
        1,
        "exactly the throttled uncached exec qualifies: {entries:?}"
    );
    let e = &entries[0];
    assert_eq!(e.get("fp").unwrap().as_str().unwrap(), format!("{fp:016x}"));
    assert_eq!(e.get("disposition").unwrap().as_str().unwrap(), "done");
    assert!(matches!(e.get("cached").unwrap(), uload::Json::Bool(false)));
    assert!(e.get("latency_ns").unwrap().as_f64().unwrap() >= 25e6);
    assert_eq!(
        e.get("rows").unwrap().as_f64().unwrap(),
        cold.rows.len() as f64
    );
    // the captured QueryProfile is the full per-node tree, not a stub
    let profile = e.get("profile").unwrap();
    assert!(
        profile.get("plan").is_some(),
        "slow entry must carry the re-profiled plan: {profile:?}"
    );

    // the profiled re-run fed the cardinality feedback store under the
    // served document's version
    let stats = server.state().engine().stats_store();
    assert!(!stats.is_empty(), "StatsStore empty after a profiled run");
    assert!(stats.observations() > 0);

    // SLOWLOG drains: a second call returns nothing, but the lifetime
    // counter remembers the capture
    let again = json::parse(&c.slowlog_json().unwrap()).unwrap();
    assert!(again.as_arr().unwrap().is_empty());
    assert_eq!(server.state().slowlog().recorded(), 1);
    assert_eq!(server.state().metrics().slow_queries.get(), 1);

    c.quit().unwrap();
    server.shutdown();
    server.wait();
}

#[test]
fn metrics_snapshot_validates_against_schema_and_stats_absorb_exec_counters() {
    // join-only rewriting over two single-node views: the plan is a
    // structural join (fused twig), so the metered execution reports
    // real kernel counters instead of a pure view scan's zeros
    let doc = generate::xmark(2, 13);
    let mut cfg = EngineConfig::default();
    cfg.rewrite.allow_navigation = false;
    let mut engine = Uload::builder().document(&doc).config(cfg).build().unwrap();
    engine
        .add_view_text("v_items", "//item[id:s]", &doc)
        .unwrap();
    engine
        .add_view_text("v_names", "//name[id:s,val]", &doc)
        .unwrap();
    let server = Server::start(ServerConfig::default(), engine, DocumentHandle::new(doc)).unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    let fp = c.prepare(r#"doc("X")//item/name"#).unwrap();
    assert!(!c.exec(fp).unwrap().cached);
    assert!(c.exec(fp).unwrap().cached);

    // per-session STATS surfaces the absorbed kernel counters of the
    // uncached execution
    let stats = json::parse(&c.stats_json().unwrap()).unwrap();
    let exec = stats.get("exec").unwrap();
    assert!(
        exec.get("comparisons").unwrap().as_f64().unwrap() > 0.0,
        "session exec counters never absorbed: {exec:?}"
    );
    assert!(exec.get("batches_scanned").unwrap().as_f64().is_some());
    assert!(exec.get("vector_compares").unwrap().as_f64().is_some());

    // METRICS validates against the published contract
    let metrics = json::parse(&c.metrics_json().unwrap()).unwrap();
    let schema_text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/schemas/metrics.schema.json"
    ))
    .unwrap();
    let schema = json::parse(&schema_text).unwrap();
    json::validate(&metrics, &schema).unwrap();

    // the request path recorded exactly one uncached and one cached
    // execution into the latency histograms
    let m = server.state().metrics();
    assert_eq!(m.exec_uncached_ns.count(), 1);
    assert_eq!(m.exec_cached_ns.count(), 1);
    assert_eq!(m.requests.get(), 2);
    assert_eq!(m.result_cache_hits.get(), 1);
    assert_eq!(m.result_cache_misses.get(), 1);
    assert!(m.exec_comparisons.get() > 0);

    // ...and the registry snapshot agrees with the wire form
    let uncached = metrics
        .get("registry")
        .unwrap()
        .get("histograms")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .find(|h| h.get("name").unwrap().as_str() == Some("server.exec_uncached_ns"))
        .expect("exec_uncached_ns histogram missing from METRICS");
    assert_eq!(uncached.get("count").unwrap().as_f64().unwrap(), 1.0);

    c.quit().unwrap();
    server.shutdown();
    server.wait();
}

#[test]
fn forced_mispredict_triggers_exactly_one_replan_and_invalidates_the_stale_entry() {
    // join-only rewriting over two single-node views: the prepared plan
    // has a real twig arm, so feedback can flip it to the cascade
    let doc = generate::xmark(2, 13);
    let mut cfg = EngineConfig::default();
    cfg.rewrite.allow_navigation = false;
    let mut engine = Uload::builder().document(&doc).config(cfg).build().unwrap();
    engine
        .add_view_text("v_items", "//item[id:s]", &doc)
        .unwrap();
    engine
        .add_view_text("v_names", "//name[id:s,val]", &doc)
        .unwrap();
    let server = Server::start(ServerConfig::default(), engine, DocumentHandle::new(doc)).unwrap();
    let mut c = Client::connect(server.addr()).unwrap();

    let fp = c.prepare(r#"doc("X")//item/name"#).unwrap();
    let prep0 = server.state().prepared_plan(fp).unwrap();
    assert_eq!((prep0.arm(), prep0.arm_source()), ("twig", "knob"));
    let cold = c.exec(fp).unwrap();
    assert!(!cold.cached && !cold.rows.is_empty());
    assert!(c.exec(fp).unwrap().cached, "second exec must hit the cache");

    // forced mispredict: feed the stats store a measured arm outcome
    // saying the chosen (twig) arm ran slower than the alternative,
    // under the served document's real version
    let version = server.state().document().version().0;
    let profile = QueryProfile {
        query: r#"doc("X")//item/name"#.to_string(),
        phases: Vec::new(),
        plan: PlanNodeProfile {
            op: "TwigJoin(3 steps)".to_string(),
            est_cost: 1.0,
            est_rows: 1.0,
            actual_rows: 1,
            time_ns: 1,
            metrics: uload::ExecMetrics::default(),
            mispredicted: false,
            children: Vec::new(),
        },
        cache: None,
        arm: Some(uload::ArmTelemetry {
            chosen: "twig".to_string(),
            est_chosen: 10.0,
            est_alternative: 20.0,
            actual_chosen_ns: 900,
            actual_alternative_ns: 300,
            mispredicted: true,
        }),
        streamed: None,
        total_ns: 1,
    };
    server
        .state()
        .engine()
        .stats_store()
        .record_profile(version, fp, &profile);

    // next EXEC: the mispredict crosses the (default) threshold, the
    // plan is re-planned onto the cascade arm, the stale cache entry
    // under the old fingerprint is dropped, and the request executes
    // the swapped plan uncached — with byte-identical rows
    let replanned = c.exec(fp).unwrap();
    assert!(!replanned.cached, "stale entry served after a re-plan");
    assert_eq!(replanned.rows, cold.rows, "re-planned arm changed answers");
    let m = server.state().metrics();
    assert_eq!(m.replan_triggered.get(), 1);
    assert_eq!(m.replan_swapped.get(), 1);
    assert_eq!(m.replan_cache_invalidated.get(), 1);
    let swapped = server.state().prepared_plan(fp).unwrap();
    assert_eq!(
        (swapped.arm(), swapped.arm_source()),
        ("cascade", "feedback-arm")
    );
    assert_eq!(swapped.epoch(), 1);
    assert_ne!(swapped.fingerprint(), fp, "the swapped plan must differ");

    // the swap is idempotent per (plan, version): no second re-plan,
    // and the new plan's results are cached normally
    assert!(c.exec(fp).unwrap().cached);
    assert_eq!(
        m.replan_triggered.get(),
        1,
        "re-planned twice for one version"
    );

    // the swap left an audit entry in the slow-query log, bypassing the
    // latency threshold
    let log = json::parse(&c.slowlog_json().unwrap()).unwrap();
    let entries = log.as_arr().unwrap();
    let replans: Vec<_> = entries
        .iter()
        .filter(|e| e.get("disposition").unwrap().as_str() == Some("replan"))
        .collect();
    assert_eq!(replans.len(), 1, "exactly one REPLAN entry: {entries:?}");
    assert_eq!(
        replans[0].get("fp").unwrap().as_str().unwrap(),
        format!("{fp:016x}")
    );
    assert_eq!(replans[0].get("rows").unwrap().as_f64().unwrap(), 0.0);

    c.quit().unwrap();
    server.shutdown();
    server.wait();
}

#[test]
fn explain_reports_arm_choice_and_feedback_provenance_without_executing() {
    let server = start(generate::xmark(2, 13), 64, ServerConfig::default());
    let mut c = Client::connect(server.addr()).unwrap();

    let explain = json::parse(&c.explain_json(QUERY).unwrap()).unwrap();
    assert_eq!(explain.get("query").unwrap().as_str().unwrap(), QUERY);
    assert!(explain.get("fingerprint").unwrap().as_str().is_some());
    assert!(explain.get("chosen_arm").unwrap().as_str().is_some());
    assert_eq!(
        explain.get("arm_source").unwrap().as_str().unwrap(),
        "knob",
        "an empty stats store must leave the knob in charge"
    );
    assert_eq!(
        explain.get("feedback_nodes").unwrap().as_f64().unwrap(),
        0.0
    );
    let plan = explain.get("plan").unwrap();
    assert!(plan.get("op").unwrap().as_str().is_some());
    assert!(plan.get("est_rows").unwrap().as_f64().is_some());
    assert_eq!(plan.get("source").unwrap().as_str().unwrap(), "catalog");
    // nothing executed: no request counted, nothing cached
    assert_eq!(server.state().metrics().requests.get(), 0);
    assert_eq!(server.state().result_cache().counters().entries, 0);

    c.quit().unwrap();
    server.shutdown();
    server.wait();
}

#[test]
fn telemetry_off_still_answers_metrics_with_empty_histograms() {
    let config = ServerConfig::default().with_telemetry(false);
    let server = start(generate::xmark(2, 13), 64, config);
    let mut c = Client::connect(server.addr()).unwrap();
    assert!(!c.query(QUERY).unwrap().rows.is_empty());

    let metrics = json::parse(&c.metrics_json().unwrap()).unwrap();
    assert!(matches!(
        metrics.get("server").unwrap().get("telemetry").unwrap(),
        uload::Json::Bool(false)
    ));
    let m = server.state().metrics();
    assert_eq!(m.exec_uncached_ns.count(), 0, "histograms must stay idle");
    // structural counters still tick (they are free), latency ones don't
    assert!(m.requests.get() > 0);

    c.quit().unwrap();
    server.shutdown();
    server.wait();
}

#[test]
fn unix_socket_transport_works_end_to_end() {
    let path = std::env::temp_dir().join(format!("uload-server-test-{}.sock", std::process::id()));
    let config = ServerConfig::default().with_addr(BindAddr::Unix(path.clone()));
    let server = start(generate::xmark(2, 13), 64, config);
    let mut c = Client::connect(server.addr()).unwrap();
    let reply = c.query(QUERY).unwrap();
    assert!(!reply.rows.is_empty());
    c.quit().unwrap();
    server.shutdown();
    server.wait();
    assert!(!path.exists(), "socket file must be cleaned up on shutdown");
}
