//! Integration tests of the multi-client query server: concurrent
//! sessions sharing the versioned result cache (identical and
//! rewritten-equivalent query texts), graceful mid-stream cancellation
//! (explicit `CANCEL` and plain disconnect) releasing the `Residency`
//! budget, admission control bounding oversubscribed clients, and
//! document swaps invalidating the cache through the version key.

use std::time::{Duration, Instant};

use uload::json;
use uload::prelude::*;
use uload::server::RowEvent;

const QUERY: &str = r#"for $x in doc("X")//item return <res>{$x/name/text()}</res>"#;
/// Same plan as [`QUERY`] after parsing: whitespace and variable
/// spelling differ, the extracted pattern does not.
const QUERY_EQUIV: &str = r#"for   $y in doc("X")//item   return <res>{$y/name/text()}</res>"#;
const VIEW: &str = "//item[id:s]{ /n? name1:name[val] }";

fn engine_over(doc: &Document, batch_size: usize) -> Uload {
    let mut u = Uload::builder()
        .document(doc)
        .batch_size(batch_size)
        .cache_capacity(1024)
        .build()
        .unwrap();
    u.add_view_text("V", VIEW, doc).unwrap();
    u
}

fn start(doc: Document, batch_size: usize, config: ServerConfig) -> ServerHandle {
    let engine = engine_over(&doc, batch_size);
    Server::start(config, engine, DocumentHandle::new(doc)).unwrap()
}

fn wait_until(what: &str, mut ok: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !ok() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn equivalent_texts_share_a_fingerprint_and_a_cache_entry() {
    let server = start(generate::xmark(2, 13), 64, ServerConfig::default());
    let mut c = Client::connect(server.addr()).unwrap();

    let fp = c.prepare(QUERY).unwrap();
    let fp_equiv = c.prepare(QUERY_EQUIV).unwrap();
    assert_eq!(
        fp, fp_equiv,
        "equivalent texts must plan to one fingerprint"
    );
    assert_eq!(server.state().prepared_count(), 1);

    let cold = c.exec(fp).unwrap();
    assert!(!cold.cached && !cold.rows.is_empty());
    let warm = c.exec(fp_equiv).unwrap();
    assert!(warm.cached, "second execution must hit the result cache");
    assert_eq!(cold.rows, warm.rows);

    // the full-text QUERY path lands on the same cache entry too
    let via_query = c.query(QUERY_EQUIV).unwrap();
    assert!(via_query.cached);
    assert_eq!(via_query.fingerprint, fp);

    let stats = json::parse(&c.stats_json().unwrap()).unwrap();
    let rc = stats.get("result_cache").unwrap();
    assert_eq!(rc.get("hits").unwrap().as_f64().unwrap(), 2.0);
    assert_eq!(rc.get("misses").unwrap().as_f64().unwrap(), 1.0);
    c.quit().unwrap();
    server.shutdown();
    server.wait();
}

#[test]
fn concurrent_sessions_hit_the_shared_caches() {
    let server = start(generate::xmark(2, 13), 64, ServerConfig::default());
    let addr = server.addr().clone();

    // round 1: populate (exactly one session inserts; racing sessions
    // may each miss once). round 2: everyone must hit.
    let mut warm = Client::connect(&addr).unwrap();
    let baseline = warm.query(QUERY).unwrap();
    assert!(!baseline.cached);

    let clients: Vec<_> = (0..4)
        .map(|i| {
            let addr = addr.clone();
            let want = baseline.rows.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).unwrap();
                // alternate identical and rewritten-equivalent spellings
                let text = if i % 2 == 0 { QUERY } else { QUERY_EQUIV };
                let reply = c.query(text).unwrap();
                assert!(reply.cached, "client {i} missed a warm cache");
                assert_eq!(reply.rows, want, "client {i} rows diverged");
                c.quit().unwrap();
            })
        })
        .collect();
    for t in clients {
        t.join().unwrap();
    }

    // shared result cache: 1 miss (the warm-up), 4 hits
    let counters = server.state().result_cache().counters();
    assert_eq!(counters.hits, 4);
    assert_eq!(counters.misses, 1);
    assert_eq!(counters.entries, 1);

    // the rewriting layer's CanonicalCache served repeat preparations
    let stats = json::parse(&warm.stats_json().unwrap()).unwrap();
    let canonical = stats.get("canonical_cache").unwrap();
    assert!(
        canonical.get("hits").unwrap().as_f64().unwrap() > 0.0,
        "concurrent equivalent queries never hit the CanonicalCache"
    );
    warm.quit().unwrap();
    server.shutdown();
    server.wait();
}

#[test]
fn cancel_mid_stream_releases_budget_and_leaves_server_serving() {
    // one-row batches and a per-batch throttle → the stream is reliably
    // still in flight when the CANCEL lands
    let config = ServerConfig::default().with_stream_throttle(Duration::from_millis(20));
    let server = start(generate::xmark(3, 13), 1, config);
    let mut c = Client::connect(server.addr()).unwrap();
    let fp = c.prepare(QUERY).unwrap();

    c.start_exec(fp).unwrap();
    let mut seen = 0u64;
    // read a couple of rows, then cancel mid-stream
    let outcome = loop {
        match c.next_event().unwrap() {
            RowEvent::Row(_) => {
                seen += 1;
                if seen == 2 {
                    c.cancel().unwrap();
                }
            }
            other => break other,
        }
    };
    match outcome {
        RowEvent::Cancelled { rows } => assert!(rows >= 2, "cancel lost delivered rows"),
        other => panic!("expected CANCELLED, got {other:?}"),
    }

    // the admission permit must be back and the residency released
    wait_until("cancelled permit release", || {
        server.state().admission().in_use() == 0
    });

    // the cancelled request never memoized a partial result…
    assert_eq!(server.state().result_cache().counters().entries, 0);
    // …and the same session (and a fresh one) still get full answers
    let full = c.exec(fp).unwrap();
    assert!(!full.cached && full.rows.len() as u64 > 2);
    let mut c2 = Client::connect(server.addr()).unwrap();
    assert_eq!(c2.query(QUERY).unwrap().rows, full.rows);

    let stats = json::parse(&c.stats_json().unwrap()).unwrap();
    assert_eq!(stats.get("cancelled").unwrap().as_f64().unwrap(), 1.0);
    c.quit().unwrap();
    c2.quit().unwrap();
    server.shutdown();
    server.wait();
}

#[test]
fn dropped_session_mid_stream_releases_budget() {
    let config = ServerConfig::default().with_stream_throttle(Duration::from_millis(20));
    let server = start(generate::xmark(3, 13), 1, config);
    {
        let mut c = Client::connect(server.addr()).unwrap();
        let fp = c.prepare(QUERY).unwrap();
        c.start_exec(fp).unwrap();
        match c.next_event().unwrap() {
            RowEvent::Row(_) => {}
            other => panic!("expected a first row, got {other:?}"),
        }
        assert!(
            server.state().admission().in_use() > 0,
            "stream in flight must hold its admission permit"
        );
        // client dropped here, socket closes with the stream in flight
    }
    wait_until("disconnect permit release", || {
        server.state().admission().in_use() == 0
    });
    // the server is still healthy for other sessions
    let mut c2 = Client::connect(server.addr()).unwrap();
    assert!(!c2.query(QUERY).unwrap().rows.is_empty());
    c2.quit().unwrap();
    server.shutdown();
    server.wait();
}

#[test]
fn oversubscribed_clients_never_exceed_the_admission_budget() {
    // two admission slots, result cache off so every request executes
    let config = ServerConfig::default()
        .with_admission(2 * (1 << 18), 1 << 18)
        .with_result_cache(0, 0);
    let server = start(generate::xmark(2, 13), 16, config);
    let addr = server.addr().clone();

    let clients: Vec<_> = (0..6)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).unwrap();
                for _ in 0..3 {
                    assert!(!c.query(QUERY).unwrap().rows.is_empty());
                }
                c.quit().unwrap();
            })
        })
        .collect();
    for t in clients {
        t.join().unwrap();
    }

    let adm = server.state().admission();
    assert_eq!(adm.admitted_total(), 18, "all requests must have executed");
    assert!(
        adm.peak() <= adm.total(),
        "admission over-committed: peak {} > total {}",
        adm.peak(),
        adm.total()
    );
    assert_eq!(adm.in_use(), 0);
    server.shutdown();
    server.wait();
}

#[test]
fn per_query_budget_overrun_aborts_with_an_error() {
    // a 1-tuple ceiling no real join can stay under
    let config = ServerConfig::default()
        .with_admission(1, 1)
        .with_result_cache(0, 0);
    let server = start(generate::xmark(2, 13), 8, config);
    let mut c = Client::connect(server.addr()).unwrap();
    let err = c.query(QUERY).unwrap_err();
    assert!(
        err.to_string().contains("budget exceeded"),
        "expected a budget abort, got: {err}"
    );
    let stats = json::parse(&c.stats_json().unwrap()).unwrap();
    assert_eq!(stats.get("budget_aborts").unwrap().as_f64().unwrap(), 1.0);
    // budget released despite the abort
    assert_eq!(server.state().admission().in_use(), 0);
    c.quit().unwrap();
    server.shutdown();
    server.wait();
}

#[test]
fn document_swap_invalidates_through_the_version_key() {
    let server = start(generate::xmark(2, 13), 64, ServerConfig::default());
    let mut c = Client::connect(server.addr()).unwrap();
    let fp = c.prepare(QUERY).unwrap();
    let cold = c.exec(fp).unwrap();
    assert!(c.exec(fp).unwrap().cached);

    // same fingerprint, new version → the warm entry silently stops
    // matching; no explicit invalidation anywhere. (The rows themselves
    // still come from the engine's materialized views, so the point of
    // the version key is conservative invalidation: never serve a
    // memoized result attributed to a document that has been replaced.)
    let v2 = server.state().swap_document(generate::xmark(3, 17));
    let fresh = c.exec(fp).unwrap();
    assert!(!fresh.cached, "stale entry served across a document swap");
    assert_eq!(fresh.version, v2.0);
    assert_ne!(cold.version, fresh.version);
    // and the new version is itself cached now
    assert!(c.exec(fp).unwrap().cached);
    c.quit().unwrap();
    server.shutdown();
    server.wait();
}

#[test]
fn unix_socket_transport_works_end_to_end() {
    let path = std::env::temp_dir().join(format!("uload-server-test-{}.sock", std::process::id()));
    let config = ServerConfig::default().with_addr(BindAddr::Unix(path.clone()));
    let server = start(generate::xmark(2, 13), 64, config);
    let mut c = Client::connect(server.addr()).unwrap();
    let reply = c.query(QUERY).unwrap();
    assert!(!reply.rows.is_empty());
    c.quit().unwrap();
    server.shutdown();
    server.wait();
    assert!(!path.exists(), "socket file must be cleaned up on shutdown");
}
