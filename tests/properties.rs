//! Property-based tests over randomly generated documents and patterns:
//! the invariants the paper's theory promises, checked on concrete data.

use proptest::prelude::*;
use summary::Summary;
use uload_bench::pattern_gen::{self, GenConfig};
use xmltree::{generate, DocumentBuilder, NodeKind};

/// A strategy producing small random XML documents: a sequence of
/// open/close/leaf operations folded into a builder.
fn arb_document() -> impl Strategy<Value = xmltree::Document> {
    prop::collection::vec((0usize..6, 0usize..3), 1..40).prop_map(|ops| {
        let labels = ["a", "b", "c", "d", "item", "name"];
        let mut b = DocumentBuilder::new();
        b.open_element("root");
        let mut depth = 1usize;
        for (l, action) in ops {
            match action {
                0 | 1 => {
                    b.open_element(labels[l]);
                    depth += 1;
                }
                _ if depth > 1 => {
                    b.close_element();
                    depth -= 1;
                }
                _ => {
                    b.leaf_element(labels[l], "v");
                }
            }
        }
        while depth > 0 {
            b.close_element();
            depth -= 1;
        }
        b.finish()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (pre, post, depth) predicates agree with parent-chain ground truth
    /// on arbitrary documents.
    #[test]
    fn structural_ids_sound(doc in arb_document()) {
        for n in doc.all_nodes() {
            for m in doc.all_nodes() {
                let (sn, sm) = (doc.structural_id(n), doc.structural_id(m));
                let mut anc = doc.parent(m);
                let mut truth = false;
                while let Some(a) = anc {
                    if a == n { truth = true; break; }
                    anc = doc.parent(a);
                }
                prop_assert_eq!(sn.is_ancestor_of(sm), truth);
                // Dewey IDs agree with the pre/post plane
                let (dn, dm) = (doc.dewey_id(n), doc.dewey_id(m));
                prop_assert_eq!(dn.is_ancestor_of(&dm), truth);
            }
        }
    }

    /// Serialize→parse is the identity on structure.
    #[test]
    fn parser_roundtrip(doc in arb_document()) {
        let text = xmltree::parser::serialize(&doc);
        let doc2 = xmltree::parse_document(&text).unwrap();
        prop_assert_eq!(doc.len(), doc2.len());
        for (a, b) in doc.all_nodes().zip(doc2.all_nodes()) {
            prop_assert_eq!(doc.label(a), doc2.label(b));
            prop_assert_eq!(doc.kind(a), doc2.kind(b));
        }
    }

    /// The summary has one node per distinct rooted path, and every
    /// document node classifies onto a summary node with the same path.
    #[test]
    fn summary_classifies_every_node(doc in arb_document()) {
        let s = Summary::of_document(&doc);
        let phi = s.classify(&doc).unwrap();
        let mut distinct = std::collections::HashSet::new();
        for n in doc.all_nodes() {
            prop_assert_eq!(s.path_of(phi[n.index()]), doc.label_path(n));
            distinct.insert(doc.label_path(n));
        }
        prop_assert_eq!(distinct.len(), s.len());
        prop_assert!(s.conforms(&doc));
    }

    /// Strong (`+`) edges really guarantee a child on that path.
    #[test]
    fn strong_edges_hold(doc in arb_document()) {
        let s = Summary::of_document(&doc);
        let phi = s.classify(&doc).unwrap();
        for sn in s.all_nodes() {
            if s.parent(sn).is_none() || !s.edge_card(sn).is_strong() {
                continue;
            }
            let parent = s.parent(sn).unwrap();
            for n in doc.all_nodes() {
                if phi[n.index()] != parent || doc.kind(n) == NodeKind::Text {
                    continue;
                }
                let has = doc.children(n).iter().any(|&c| phi[c.index()] == sn);
                prop_assert!(has, "strong edge violated at {}", s.path_of(sn));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Containment reflexivity and soundness for generated satisfiable
    /// patterns over the XMark summary.
    #[test]
    fn containment_reflexive_and_sound(seed in 0u64..500) {
        let doc = generate::xmark(2, 17);
        let s = Summary::of_document(&doc);
        let cfg = GenConfig::xmark(5, 1);
        let pats = pattern_gen::generate_set(&s, &cfg, 3, seed);
        for p in &pats {
            prop_assert!(uload::contain(p, p, &s, &Default::default()).contained, "reflexivity:\n{}", p);
        }
        // pairwise soundness on the concrete document
        for p in &pats {
            for q in &pats {
                if uload::contain(p, q, &s, &Default::default()).contained {
                    let rp = xam_core::embed::evaluate_embed(p, &doc);
                    let rq = xam_core::embed::evaluate_embed(q, &doc);
                    prop_assert!(rp.is_subset(&rq), "unsound:\n{}\n⊆?\n{}", p, q);
                }
            }
        }
    }

    /// Minimization preserves S-equivalence and never grows the pattern.
    #[test]
    fn minimization_sound(seed in 0u64..200) {
        let doc = generate::xmark(2, 23);
        let s = Summary::of_document(&doc);
        let cfg = GenConfig::xmark(6, 1).with_optional(0.0);
        let pats = pattern_gen::generate_set(&s, &cfg, 2, seed);
        for p in &pats {
            for m in containment::minimize_by_contraction(p, &s) {
                prop_assert!(m.pattern_size() <= p.pattern_size());
                prop_assert!(containment::equivalent(&m, p, &s));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The holistic `TwigStack` operator agrees exactly with both binary
    /// cascades — StackTree and nested loop — on random `/`+`//` tree
    /// patterns over generated XMark and DBLP documents, and the planner
    /// path (fused `TwigJoin` plan) returns the same relation whether the
    /// holistic operator is enabled or the evaluator falls back to the
    /// cascade.
    #[test]
    fn twig_join_matches_binary_cascades(
        spec in prop::collection::vec((0usize..10, 0usize..8, 0usize..2), 2..7),
        dblp_sel in 0usize..2,
    ) {
        let dblp = dblp_sel == 1;
        let doc = if dblp { generate::dblp(6, 7) } else { generate::xmark(3, 7) };
        let pool: [&'static str; 10] = if dblp {
            ["dblp", "article", "inproceedings", "book", "author",
             "title", "year", "journal", "pages", "url"]
        } else {
            ["site", "regions", "item", "name", "description",
             "parlist", "listitem", "text", "keyword", "mailbox"]
        };
        // random tree pattern: node k hangs off a random earlier node
        // with a random Child/Descendant axis
        let mut w = uload_bench::experiments::TwigWorkload {
            name: "prop".into(),
            labels: Vec::new(),
            parents: Vec::new(),
            axes: Vec::new(),
        };
        for (k, &(label, parent, child)) in spec.iter().enumerate() {
            w.labels.push(pool[label]);
            w.parents.push(if k == 0 { 0 } else { parent % k });
            w.axes.push(if child == 1 { algebra::Axis::Child } else { algebra::Axis::Descendant });
        }

        let idx = storage::IdStreamIndex::build(&doc);
        let pattern = w.pattern();
        let streams = w.streams(&idx);
        let refs: Vec<&[(xmltree::StructuralId, usize)]> =
            streams.iter().map(|s| s.as_slice()).collect();
        let twig = algebra::twig_join(&pattern, &refs);
        let mut stack = uload_bench::experiments::cascade_solutions(
            &w.parents, &w.axes, &streams, true);
        stack.sort_unstable();
        let mut nested = uload_bench::experiments::cascade_solutions(
            &w.parents, &w.axes, &streams, false);
        nested.sort_unstable();
        prop_assert_eq!(&twig, &stack, "twig vs StackTree cascade on {:?}", w.labels);
        prop_assert_eq!(&stack, &nested, "StackTree vs nested loop on {:?}", w.labels);

        // planner path: the fused plan over the catalog-registered ID
        // streams, with and without the holistic operator (labels absent
        // from the document have no ids_* relation, so skip those specs)
        if streams.iter().all(|s| !s.is_empty()) {
            let cat = uload_bench::experiments::twig_catalog(&doc);
            let plan = w.twig_plan();
            let on = algebra::Evaluator::new(&cat).eval(&plan).unwrap();
            let mut off_ev = algebra::Evaluator::new(&cat);
            off_ev.config.use_twigstack = false;
            let off = off_ev.eval(&plan).unwrap();
            prop_assert_eq!(on.tuples.len(), twig.len());
            prop_assert_eq!(on, off, "planner twig vs cascade fallback on {:?}", w.labels);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The pipelined batch executor returns exactly the materialized
    /// evaluator's relation — same rows, same order — on random XMark
    /// and DBLP twig plans (both the fused holistic form and the binary
    /// cascade), across batch sizes down to one row per batch.
    #[test]
    fn streamed_matches_materialized(
        spec in prop::collection::vec((0usize..10, 0usize..8, 0usize..2), 2..7),
        dblp_sel in 0usize..2,
        batch_pick in 0usize..4,
    ) {
        let dblp = dblp_sel == 1;
        let doc = if dblp { generate::dblp(6, 7) } else { generate::xmark(3, 7) };
        let pool: [&'static str; 10] = if dblp {
            ["dblp", "article", "inproceedings", "book", "author",
             "title", "year", "journal", "pages", "url"]
        } else {
            ["site", "regions", "item", "name", "description",
             "parlist", "listitem", "text", "keyword", "mailbox"]
        };
        let mut w = uload_bench::experiments::TwigWorkload {
            name: "prop".into(),
            labels: Vec::new(),
            parents: Vec::new(),
            axes: Vec::new(),
        };
        for (k, &(label, parent, child)) in spec.iter().enumerate() {
            w.labels.push(pool[label]);
            w.parents.push(if k == 0 { 0 } else { parent % k });
            w.axes.push(if child == 1 { algebra::Axis::Child } else { algebra::Axis::Descendant });
        }
        let idx = storage::IdStreamIndex::build(&doc);
        if w.streams(&idx).iter().any(|s| s.is_empty()) {
            return Ok(()); // label absent: no ids_* relation to scan
        }
        let cat = uload_bench::experiments::twig_catalog(&doc);
        let batch_size = [1usize, 2, 7, 1024][batch_pick];
        for (plan, twig_on) in [
            (w.twig_plan(), true),
            (w.twig_plan(), false), // exercises the cascade fallback
            (w.cascade_plan(), true),
        ] {
            let mut ev = algebra::Evaluator::new(&cat);
            ev.config.use_twigstack = twig_on;
            let oracle = ev.eval(&plan).unwrap();
            let mut ccfg = algebra::CursorConfig {
                batch_size,
                ..Default::default()
            };
            ccfg.eval.use_twigstack = twig_on;
            let exec = algebra::build_cursor(&plan, &cat, None, &ccfg).unwrap();
            let streamed = exec.collect().unwrap();
            prop_assert_eq!(
                &streamed, &oracle,
                "streamed != materialized on {:?} (batch {}, twig {})",
                w.labels, batch_size, twig_on
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The seek-indexed access path is invisible to results: on random
    /// XMark and DBLP twig patterns, the skip-indexed holistic kernel
    /// (block sizes 1, 2, 64, and a non-power-of-two), the indexed
    /// StackTree merge, the linear kernels, and the nested-loop oracle
    /// all agree — and the planner paths (materialized evaluation and
    /// the streamed cursor executor behind `query()`) return the same
    /// relation with `use_skip_index` on and off.
    #[test]
    fn skip_scan_matches_full_scan(
        spec in prop::collection::vec((0usize..10, 0usize..8, 0usize..2), 2..7),
        dblp_sel in 0usize..2,
        batch_pick in 0usize..4,
    ) {
        let dblp = dblp_sel == 1;
        let doc = if dblp { generate::dblp(6, 7) } else { generate::xmark(3, 7) };
        let pool: [&'static str; 10] = if dblp {
            ["dblp", "article", "inproceedings", "book", "author",
             "title", "year", "journal", "pages", "url"]
        } else {
            ["site", "regions", "item", "name", "description",
             "parlist", "listitem", "text", "keyword", "mailbox"]
        };
        let mut w = uload_bench::experiments::TwigWorkload {
            name: "prop".into(),
            labels: Vec::new(),
            parents: Vec::new(),
            axes: Vec::new(),
        };
        for (k, &(label, parent, child)) in spec.iter().enumerate() {
            w.labels.push(pool[label]);
            w.parents.push(if k == 0 { 0 } else { parent % k });
            w.axes.push(if child == 1 { algebra::Axis::Child } else { algebra::Axis::Descendant });
        }

        let idx = storage::IdStreamIndex::build(&doc);
        let pattern = w.pattern();
        let streams = w.streams(&idx);
        let refs: Vec<&[(xmltree::StructuralId, usize)]> =
            streams.iter().map(|s| s.as_slice()).collect();
        let linear = algebra::twig_join(&pattern, &refs);
        let mut nested = uload_bench::experiments::cascade_solutions(
            &w.parents, &w.axes, &streams, false);
        nested.sort_unstable();
        prop_assert_eq!(&linear, &nested, "linear twig vs nested loop on {:?}", w.labels);

        // the seek-indexed kernels, across degenerate, tiny, default,
        // and non-power-of-two block sizes
        for block in [1usize, 2, 64, 13] {
            let ixs: Vec<algebra::SkipIndex> = streams
                .iter()
                .map(|s| algebra::SkipIndex::with_block(s, block))
                .collect();
            let opts: Vec<Option<&algebra::SkipIndex>> = ixs.iter().map(Some).collect();
            let indexed = algebra::twig_join_indexed(&pattern, &refs, &opts);
            prop_assert_eq!(
                &indexed, &linear,
                "indexed twig (block {}) vs linear on {:?}", block, w.labels
            );
            let mut stack = uload_bench::experiments::cascade_solutions_with(
                &w.parents, &w.axes, &streams, true);
            stack.sort_unstable();
            prop_assert_eq!(
                &stack, &linear,
                "indexed StackTree cascade vs linear on {:?}", w.labels
            );
        }

        // planner paths: same relation with the knob on and off, both
        // materialized and through the streamed cursor executor
        if streams.iter().all(|s| !s.is_empty()) {
            let cat = uload_bench::experiments::twig_catalog(&doc);
            let plan = w.twig_plan();
            let batch_size = [1usize, 2, 7, 1024][batch_pick];
            let mut oracle = None;
            for skip_on in [true, false] {
                let mut ev = algebra::Evaluator::new(&cat);
                ev.config.use_skip_index = skip_on;
                let mat = ev.eval(&plan).unwrap();
                let mut ccfg = algebra::CursorConfig {
                    batch_size,
                    ..Default::default()
                };
                ccfg.eval.use_skip_index = skip_on;
                let exec = algebra::build_cursor(&plan, &cat, None, &ccfg).unwrap();
                let streamed = exec.collect().unwrap();
                prop_assert_eq!(
                    &streamed, &mat,
                    "streamed != materialized (skip {}, batch {}) on {:?}",
                    skip_on, batch_size, w.labels
                );
                if let Some(prev) = &oracle {
                    prop_assert_eq!(
                        prev, &mat,
                        "skip index changed results on {:?}", w.labels
                    );
                } else {
                    prop_assert_eq!(mat.tuples.len(), linear.len());
                    oracle = Some(mat);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The columnar (structure-of-arrays) kernels are invisible to
    /// results: on random XMark and DBLP twig patterns the batched
    /// `twig_join_columnar` over packed pre/post/depth columns — at
    /// block sizes 1, 2, 13 and 64 — returns byte-identical output to
    /// the scalar kernel and the nested-loop oracle, and the planner
    /// paths (materialized evaluation and the streamed cursor executor)
    /// return the same relation with `columnar_kernels` on and off.
    #[test]
    fn columnar_matches_scalar(
        spec in prop::collection::vec((0usize..10, 0usize..8, 0usize..2), 2..7),
        dblp_sel in 0usize..2,
        batch_pick in 0usize..4,
    ) {
        let dblp = dblp_sel == 1;
        let doc = if dblp { generate::dblp(6, 7) } else { generate::xmark(3, 7) };
        let pool: [&'static str; 10] = if dblp {
            ["dblp", "article", "inproceedings", "book", "author",
             "title", "year", "journal", "pages", "url"]
        } else {
            ["site", "regions", "item", "name", "description",
             "parlist", "listitem", "text", "keyword", "mailbox"]
        };
        let mut w = uload_bench::experiments::TwigWorkload {
            name: "prop".into(),
            labels: Vec::new(),
            parents: Vec::new(),
            axes: Vec::new(),
        };
        for (k, &(label, parent, child)) in spec.iter().enumerate() {
            w.labels.push(pool[label]);
            w.parents.push(if k == 0 { 0 } else { parent % k });
            w.axes.push(if child == 1 { algebra::Axis::Child } else { algebra::Axis::Descendant });
        }

        let idx = storage::IdStreamIndex::build(&doc);
        let pattern = w.pattern();
        let streams = w.streams(&idx);
        let refs: Vec<&[(xmltree::StructuralId, usize)]> =
            streams.iter().map(|s| s.as_slice()).collect();
        let scalar = algebra::twig_join(&pattern, &refs);
        let mut nested = uload_bench::experiments::cascade_solutions(
            &w.parents, &w.axes, &streams, false);
        nested.sort_unstable();
        prop_assert_eq!(&scalar, &nested, "scalar twig vs nested loop on {:?}", w.labels);

        // the batched kernel across degenerate, tiny, non-power-of-two
        // and default block sizes
        for block in [1usize, 2, 13, 64] {
            let cols: Vec<algebra::IdColumns> = streams
                .iter()
                .map(|s| algebra::IdColumns::from_pairs(s, block))
                .collect();
            let col_refs: Vec<&algebra::IdColumns> = cols.iter().collect();
            let columnar = algebra::twig_join_columnar(&pattern, &col_refs);
            prop_assert_eq!(
                &columnar, &scalar,
                "columnar twig (block {}) vs scalar on {:?}", block, w.labels
            );
        }

        // planner paths: same relation with the knob on and off, both
        // materialized and through the streamed cursor executor
        if streams.iter().all(|s| !s.is_empty()) {
            let cat = uload_bench::experiments::twig_catalog(&doc);
            let plan = w.twig_plan();
            let batch_size = [1usize, 2, 7, 1024][batch_pick];
            let mut oracle = None;
            for columnar_on in [true, false] {
                let mut ev = algebra::Evaluator::new(&cat);
                ev.config.columnar_kernels = columnar_on;
                let mat = ev.eval(&plan).unwrap();
                let mut ccfg = algebra::CursorConfig {
                    batch_size,
                    ..Default::default()
                };
                ccfg.eval.columnar_kernels = columnar_on;
                let exec = algebra::build_cursor(&plan, &cat, None, &ccfg).unwrap();
                let streamed = exec.collect().unwrap();
                prop_assert_eq!(
                    &streamed, &mat,
                    "streamed != materialized (columnar {}, batch {}) on {:?}",
                    columnar_on, batch_size, w.labels
                );
                if let Some(prev) = &oracle {
                    prop_assert_eq!(
                        prev, &mat,
                        "columnar kernels changed results on {:?}", w.labels
                    );
                } else {
                    prop_assert_eq!(mat.tuples.len(), scalar.len());
                    oracle = Some(mat);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Structural joins over inputs that repeat node IDs across tuples
    /// (as a view column legitimately does) stay exact on the default
    /// seek-indexed path: the skip index is built over a *non-strictly*
    /// pre-sorted stream, and duplicates straddling fence-block
    /// boundaries must not cause over-pruning. skip-on, skip-off and the
    /// nested-loop oracle must return identical relations.
    #[test]
    fn struct_join_with_duplicate_ids_matches_oracle(
        pair_sel in 0usize..5,
        dups in prop::collection::vec(0usize..3, 1..40),
        axis_sel in 0usize..2,
    ) {
        use algebra::{Catalog, JoinKind, LogicalPlan, Relation, Schema, Tuple, Value};
        let doc = generate::xmark(3, 7);
        let (anc_l, desc_l) = [
            ("item", "keyword"),
            ("parlist", "listitem"),
            ("site", "item"),
            ("description", "bold"),
            ("listitem", "parlist"),
        ][pair_sel];
        let axis = if axis_sel == 1 { algebra::Axis::Child } else { algebra::Axis::Descendant };

        // relations with each node ID repeated 1–3× in consecutive
        // tuples (document order preserved, so streams arrive sorted
        // with duplicates — the layout that exercises block straddles)
        let duplicated = |label: &str| {
            let tuples: Vec<Tuple> = doc
                .nodes_with_label(label, NodeKind::Element)
                .enumerate()
                .flat_map(|(i, n)| {
                    let sid = doc.structural_id(n);
                    std::iter::repeat_with(move || Tuple::new(vec![Value::Id(sid)]))
                        .take(1 + dups[i % dups.len()])
                })
                .collect();
            Relation::new(Schema::atoms(&["ID"]), tuples)
        };
        let mut cat = Catalog::new();
        cat.insert("anc_dup", duplicated(anc_l));
        cat.insert("desc_dup", duplicated(desc_l));
        let plan = LogicalPlan::scan("anc_dup").rename(&["A"]).struct_join(
            LogicalPlan::scan("desc_dup").rename(&["B"]),
            "A",
            "B",
            axis,
            JoinKind::Inner,
        );

        let mut oracle_ev = algebra::Evaluator::new(&cat);
        oracle_ev.config.use_stacktree = false; // nested loop
        let oracle = oracle_ev.eval(&plan).unwrap();
        for skip_on in [true, false] {
            let mut ev = algebra::Evaluator::new(&cat);
            ev.config.use_skip_index = skip_on;
            let got = ev.eval(&plan).unwrap();
            prop_assert_eq!(
                &got, &oracle,
                "{} {:?} {} (skip {}) dropped or invented pairs",
                anc_l, axis, desc_l, skip_on
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Telemetry histograms bound true quantiles within one log-linear
    /// bucket, and merging per-shard snapshots is indistinguishable from
    /// recording everything into a single histogram. The reported
    /// quantile never undershoots the exact nearest-rank order statistic
    /// and overshoots by at most the bucket width (exact below 16,
    /// ≤ 1/16 relative above).
    #[test]
    fn histogram_quantiles_within_one_bucket(
        values in prop::collection::vec(0u64..(1u64 << 44), 1..400),
        parts in 1usize..6,
    ) {
        let shards: Vec<uload::Histogram> =
            (0..parts).map(|_| uload::Histogram::new()).collect();
        for (i, &v) in values.iter().enumerate() {
            shards[i % parts].record(v);
        }
        let mut merged = uload::HistogramSnapshot::empty();
        for s in &shards {
            merged.merge(&s.snapshot());
        }
        prop_assert_eq!(merged.count(), values.len() as u64);

        // sharded-and-merged == one whole histogram, bucket for bucket
        let whole = uload::Histogram::new();
        for &v in &values {
            whole.record(v);
        }
        prop_assert_eq!(&merged, &whole.snapshot());

        let mut sorted = values.clone();
        sorted.sort_unstable();
        prop_assert_eq!(merged.min(), sorted[0]);
        prop_assert_eq!(merged.max(), *sorted.last().unwrap());
        for q in [0.5, 0.9, 0.99, 0.999] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let truth = sorted[rank - 1];
            let got = merged.quantile(q);
            prop_assert!(got >= truth, "q={} reported {} < true {}", q, got, truth);
            let slack = if truth < 16 { 0 } else { truth >> 4 };
            prop_assert!(
                got - truth <= slack,
                "q={} reported {} vs true {} exceeds one bucket (slack {})",
                q, got, truth, slack
            );
        }
    }
}

/// Overwrite a profiled plan tree's measurements with synthetic skew:
/// every node claims `rows` actual rows and a ≥4× misprediction flag,
/// regardless of what really ran.
fn skew_profile(p: &mut uload::PlanNodeProfile, rows: u64) {
    p.actual_rows = rows;
    p.mispredicted = true;
    for c in &mut p.children {
        skew_profile(c, rows);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Cardinality feedback is invisible to answers: an engine whose
    /// `StatsStore` holds profiled runs plus adversarial synthetic skew
    /// (every node flagged mispredicted, the arm choice flagged wrong)
    /// returns byte-identical results to a cold engine — materialized,
    /// streamed (where the skew arms the mid-query fallover hint), and
    /// through the adaptive prepare path that may pick the other arm.
    #[test]
    fn feedback_never_changes_answers(
        qsel in 0usize..3,
        skew in 1u64..10_000,
        observations in 1usize..4,
    ) {
        let doc = generate::xmark(2, 13);
        let build = || {
            let mut cfg = uload::EngineConfig::default();
            cfg.rewrite.allow_navigation = false;
            let mut u = uload::Uload::builder()
                .document(&doc)
                .config(cfg)
                .batch_size(7)
                .build()
                .unwrap();
            u.add_view_text("v_items", "//item[id:s]", &doc).unwrap();
            u.add_view_text("v_names", "//name[id:s,val]", &doc).unwrap();
            u
        };
        let query = [
            r#"doc("X")//item/name"#,
            r#"for $n in doc("X")//item/name return <r>{$n}</r>"#,
            r#"doc("X")//name"#,
        ][qsel];
        let cold = build();
        let warm = build();

        // populate warm's store with real profiled runs, then poison it
        // with synthetic skew under the plan's own fingerprint
        let fp = warm.prepare_query(query).unwrap().fingerprint();
        for _ in 0..observations {
            let (_, _, mut profile) = warm.answer_profiled(query, &doc).unwrap();
            skew_profile(&mut profile.plan, skew);
            if let Some(arm) = profile.arm.as_mut() {
                arm.mispredicted = true;
            }
            warm.stats_store().record_profile(0, fp, &profile);
        }
        prop_assert!(warm.stats_store().has_feedback(0, fp), "store never populated");
        prop_assert!(cold.stats_store().is_empty());

        // materialized path
        let (rows_cold, _) = cold.answer(query, &doc).unwrap();
        let (rows_warm, _) = warm.answer(query, &doc).unwrap();
        prop_assert_eq!(&rows_cold, &rows_warm, "feedback changed materialized answers");

        // streamed path: the skewed arm stats arm the fallover hint
        let drain = |u: &uload::Uload| -> Vec<String> {
            let res = u.query(query, &doc).unwrap();
            res.map(|item| item.unwrap()).collect()
        };
        prop_assert_eq!(&drain(&cold), &rows_cold, "cold streamed != materialized");
        prop_assert_eq!(&drain(&warm), &rows_cold, "feedback changed streamed answers");

        // adaptive prepare: whatever arm the feedback picks, the rows
        // are the cold plan's rows
        let prep_cold = cold.prepare_query(query).unwrap();
        let prep_warm = warm.prepare_query_for_version(query, 0).unwrap();
        let h1 = uload::DocumentHandle::new(doc.clone());
        let out_cold = cold.execute_prepared(&prep_cold, &h1).unwrap();
        let out_warm = warm.execute_prepared(&prep_warm, &h1).unwrap();
        let xml = |o: &uload::QueryOutput| o.items.iter().map(|i| i.xml.clone()).collect::<Vec<_>>();
        prop_assert_eq!(xml(&out_cold), xml(&out_warm), "adaptive prepare changed answers");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// The parallel, cache-backed engine is observationally identical to
    /// the sequential one: same containment verdicts (and, on positive
    /// runs, the same model sizes) and the same rewriting sets, in the
    /// same order.
    #[test]
    fn parallel_engine_matches_sequential(seed in 0u64..300) {
        let doc = generate::xmark(2, 17);
        let s = Summary::of_document(&doc);
        let cfg = GenConfig::xmark(4, 1);
        let pats = pattern_gen::generate_set(&s, &cfg, 3, seed);
        let cache = uload::CanonicalCache::new(256);

        // containment verdicts
        for p in &pats {
            for q in &pats {
                let seq = uload::contain(p, q, &s, &Default::default());
                let par_opts = uload::ContainOptions::default()
                    .with_threads(4)
                    .with_cache(&cache);
                let par = uload::contain(p, q, &s, &par_opts);
                prop_assert_eq!(seq.contained, par.contained, "verdict:\n{}\n⊆?\n{}", p, q);
                if seq.contained {
                    prop_assert_eq!(seq.model_size, par.model_size, "model:\n{}\n⊆?\n{}", p, q);
                }
                // a second cached call must replay the same verdict
                let replay = uload::contain(p, q, &s, &par_opts);
                prop_assert_eq!(par.contained, replay.contained);
            }
        }

        // rewriting sets, on the §5.6 workload shape (conjunctive size-4
        // query, size-3 views plus one exactly-covering view)
        let qcfg = GenConfig::xmark(4, 1).with_optional(0.0);
        let qs = pattern_gen::generate_set(&s, &qcfg, 1, 9000 + seed);
        let q = &qs[0];
        let noise = pattern_gen::generate_set(
            &s,
            &GenConfig::xmark(3, 1).with_optional(0.0),
            3,
            500 + seed,
        );
        let mut views: Vec<(String, xam_core::Xam)> = noise
            .into_iter()
            .enumerate()
            .map(|(i, v)| (format!("v{i}"), v))
            .collect();
        views.push(("exact".into(), q.clone()));
        let eng = uload::EngineOptions {
            threads: 4,
            cache: Some(&cache),
            ..Default::default()
        };
        let (seq_rw, _) = rewriting::rewrite(q, &views, &s);
        let (par_rw, _) = uload::rewrite_with_engine(q, &views, &s, Default::default(), &eng);
        let key = |r: &uload::Rewriting| format!("{:?}|{}", r.views_used, r.plan);
        let seq_keys: Vec<String> = seq_rw.iter().map(key).collect();
        let par_keys: Vec<String> = par_rw.iter().map(key).collect();
        prop_assert!(!seq_rw.is_empty(), "covering view must yield a rewriting");
        prop_assert_eq!(seq_keys, par_keys, "rewriting sets differ for\n{}", q);
        prop_assert!(cache.stats().hits > 0, "cache never hit");
    }
}
