//! Property-based tests over randomly generated documents and patterns:
//! the invariants the paper's theory promises, checked on concrete data.

use proptest::prelude::*;
use summary::Summary;
use uload_bench::pattern_gen::{self, GenConfig};
use xmltree::{generate, DocumentBuilder, NodeKind};

/// A strategy producing small random XML documents: a sequence of
/// open/close/leaf operations folded into a builder.
fn arb_document() -> impl Strategy<Value = xmltree::Document> {
    prop::collection::vec((0usize..6, 0usize..3), 1..40).prop_map(|ops| {
        let labels = ["a", "b", "c", "d", "item", "name"];
        let mut b = DocumentBuilder::new();
        b.open_element("root");
        let mut depth = 1usize;
        for (l, action) in ops {
            match action {
                0 | 1 => {
                    b.open_element(labels[l]);
                    depth += 1;
                }
                _ if depth > 1 => {
                    b.close_element();
                    depth -= 1;
                }
                _ => {
                    b.leaf_element(labels[l], "v");
                }
            }
        }
        while depth > 0 {
            b.close_element();
            depth -= 1;
        }
        b.finish()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (pre, post, depth) predicates agree with parent-chain ground truth
    /// on arbitrary documents.
    #[test]
    fn structural_ids_sound(doc in arb_document()) {
        for n in doc.all_nodes() {
            for m in doc.all_nodes() {
                let (sn, sm) = (doc.structural_id(n), doc.structural_id(m));
                let mut anc = doc.parent(m);
                let mut truth = false;
                while let Some(a) = anc {
                    if a == n { truth = true; break; }
                    anc = doc.parent(a);
                }
                prop_assert_eq!(sn.is_ancestor_of(sm), truth);
                // Dewey IDs agree with the pre/post plane
                let (dn, dm) = (doc.dewey_id(n), doc.dewey_id(m));
                prop_assert_eq!(dn.is_ancestor_of(&dm), truth);
            }
        }
    }

    /// Serialize→parse is the identity on structure.
    #[test]
    fn parser_roundtrip(doc in arb_document()) {
        let text = xmltree::parser::serialize(&doc);
        let doc2 = xmltree::parse_document(&text).unwrap();
        prop_assert_eq!(doc.len(), doc2.len());
        for (a, b) in doc.all_nodes().zip(doc2.all_nodes()) {
            prop_assert_eq!(doc.label(a), doc2.label(b));
            prop_assert_eq!(doc.kind(a), doc2.kind(b));
        }
    }

    /// The summary has one node per distinct rooted path, and every
    /// document node classifies onto a summary node with the same path.
    #[test]
    fn summary_classifies_every_node(doc in arb_document()) {
        let s = Summary::of_document(&doc);
        let phi = s.classify(&doc).unwrap();
        let mut distinct = std::collections::HashSet::new();
        for n in doc.all_nodes() {
            prop_assert_eq!(s.path_of(phi[n.index()]), doc.label_path(n));
            distinct.insert(doc.label_path(n));
        }
        prop_assert_eq!(distinct.len(), s.len());
        prop_assert!(s.conforms(&doc));
    }

    /// Strong (`+`) edges really guarantee a child on that path.
    #[test]
    fn strong_edges_hold(doc in arb_document()) {
        let s = Summary::of_document(&doc);
        let phi = s.classify(&doc).unwrap();
        for sn in s.all_nodes() {
            if s.parent(sn).is_none() || !s.edge_card(sn).is_strong() {
                continue;
            }
            let parent = s.parent(sn).unwrap();
            for n in doc.all_nodes() {
                if phi[n.index()] != parent || doc.kind(n) == NodeKind::Text {
                    continue;
                }
                let has = doc.children(n).iter().any(|&c| phi[c.index()] == sn);
                prop_assert!(has, "strong edge violated at {}", s.path_of(sn));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Containment reflexivity and soundness for generated satisfiable
    /// patterns over the XMark summary.
    #[test]
    fn containment_reflexive_and_sound(seed in 0u64..500) {
        let doc = generate::xmark(2, 17);
        let s = Summary::of_document(&doc);
        let cfg = GenConfig::xmark(5, 1);
        let pats = pattern_gen::generate_set(&s, &cfg, 3, seed);
        for p in &pats {
            prop_assert!(containment::contained_in(p, p, &s), "reflexivity:\n{}", p);
        }
        // pairwise soundness on the concrete document
        for p in &pats {
            for q in &pats {
                if containment::contained_in(p, q, &s) {
                    let rp = xam_core::embed::evaluate_embed(p, &doc);
                    let rq = xam_core::embed::evaluate_embed(q, &doc);
                    prop_assert!(rp.is_subset(&rq), "unsound:\n{}\n⊆?\n{}", p, q);
                }
            }
        }
    }

    /// Minimization preserves S-equivalence and never grows the pattern.
    #[test]
    fn minimization_sound(seed in 0u64..200) {
        let doc = generate::xmark(2, 23);
        let s = Summary::of_document(&doc);
        let cfg = GenConfig::xmark(6, 1).with_optional(0.0);
        let pats = pattern_gen::generate_set(&s, &cfg, 2, seed);
        for p in &pats {
            for m in containment::minimize_by_contraction(p, &s) {
                prop_assert!(m.pattern_size() <= p.pattern_size());
                prop_assert!(containment::equivalent(&m, p, &s));
            }
        }
    }
}
