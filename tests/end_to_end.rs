//! Cross-crate integration tests: documents → summaries → XAMs → queries
//! → rewritings, exercising the whole pipeline the way ULoad wires it.

use uload::prelude::*;
use xmltree::generate;

/// Direct XQuery execution against several documents and queries.
#[test]
fn xquery_direct_evaluation_scenarios() {
    let bib = generate::bib_document();
    let cases: Vec<(&str, usize)> = vec![
        (r#"doc("d")//book"#, 2),
        (r#"doc("d")//book/title"#, 2),
        (r#"doc("d")//author"#, 5),
        (
            r#"for $b in doc("d")//book return <r>{$b/title/text()}</r>"#,
            2,
        ),
        (
            r#"for $b in doc("d")//book where $b/year = "1999" return <r>{$b/author}</r>"#,
            1,
        ),
        (
            r#"for $a in doc("d")//phdthesis/author return <x>{$a/text()}</x>"#,
            1,
        ),
    ];
    for (q, expect) in cases {
        let out = xquery::execute_query(q, &bib).unwrap();
        assert_eq!(out.len(), expect, "query {q}");
    }
}

/// The headline pipeline: an auction query over an XMark-like document is
/// answered from materialized views only, and matches direct evaluation.
#[test]
fn views_answer_xmark_queries() {
    let doc = generate::xmark(3, 71);
    let mut u = Uload::builder().document(&doc).build().unwrap();
    u.add_view_text("v_items", "//item[id:s]{ /n? nm:name[val] }", &doc)
        .unwrap();
    let q = r#"for $i in doc("x")//item return <n>{$i/name/text()}</n>"#;
    let (from_views, _) = u.answer(q, &doc).unwrap();
    let direct = xquery::execute_query(q, &doc).unwrap();
    assert_eq!(from_views, direct);
    assert!(!from_views.is_empty());
}

/// Adding a view makes a query answerable; dropping it breaks it again —
/// the extensibility story of the introduction.
#[test]
fn extensibility_add_drop_view() {
    let doc = generate::bib_sample();
    let mut u = Uload::builder().document(&doc).build().unwrap();
    let q = r#"for $b in doc("d")//book return <t>{$b/title}</t>"#;
    assert!(u.answer(q, &doc).is_err());
    u.add_view_text("v", "//book[id:s]{ /n? t:title[cont] }", &doc)
        .unwrap();
    assert!(u.answer(q, &doc).is_ok());
}

/// XAM evaluation agrees with the embedding semantics on the XMark data
/// for a batch of patterns (the two semantics of Chapters 2 and 4).
#[test]
fn algebraic_vs_embedding_semantics_on_xmark() {
    let doc = generate::xmark(2, 5);
    for text in [
        "//item[id:s]{ /name[id:s] }",
        "//parlist[id:s]{ /listitem[id:s] }",
        "//person[id:s]{ /? homepage[id:s] }",
        "//open_auction[id:s]{ /bidder[id:s]{ /increase[id:s] } }",
        "//*[id:s]{ /keyword[id:s] }",
    ] {
        let xam = parse_xam(text).unwrap();
        let alg = xam_core::evaluate(&xam, &doc).unwrap();
        let emb = xam_core::embed::evaluate_embed(&xam, &doc);
        assert_eq!(alg.tuples.len(), emb.len(), "pattern {text}");
    }
}

/// Summary-constrained containment is sound: if `p ⊆_S q` then on every
/// conforming document `p`'s ID-tuples are among `q`'s.
#[test]
fn containment_soundness_on_documents() {
    let doc = generate::xmark(2, 33);
    let s = Summary::of_document(&doc);
    let pats: Vec<_> = [
        "//item[id:s]",
        "//regions{ //item[id:s] }",
        "//*[id:s]",
        "//listitem[id:s]",
        "//parlist{ /listitem[id:s] }",
        "//description{ //listitem[id:s] }",
    ]
    .iter()
    .map(|t| parse_xam(t).unwrap())
    .collect();
    for p in &pats {
        for q in &pats {
            if !contain(p, q, &s, &ContainOptions::default()).contained {
                continue;
            }
            let rp = xam_core::embed::evaluate_embed(p, &doc);
            let rq = xam_core::embed::evaluate_embed(q, &doc);
            assert!(
                rp.is_subset(&rq),
                "containment claimed but results not included:\n{p}\nvs\n{q}"
            );
        }
    }
}

/// Rewriting soundness: every rewriting returned evaluates to exactly the
/// pattern's own result over the document.
#[test]
fn rewriting_soundness_end_to_end() {
    let doc = generate::xmark(2, 55);
    let s = Summary::of_document(&doc);
    let view_defs = [
        ("w_items", "//item[id:s,cont]"),
        ("w_names", "//name[id:s,val]"),
        ("w_listitems", "//listitem[id:s]"),
        ("w_item_names", "//item[id:s]{ /name[val] }"),
        ("w_people", "//person[id:s]"),
    ];
    let views: Vec<(String, xam_core::Xam)> = view_defs
        .iter()
        .map(|(n, t)| (n.to_string(), parse_xam(t).unwrap()))
        .collect();
    let mut store = storage::MaterializedStore::new();
    for (n, v) in &views {
        store.add_view(n.clone(), v.clone(), &doc).unwrap();
    }
    let queries = [
        "//item[id:s]",
        "//item[id:s]{ /name[val] }",
        "//name[id:s,val]",
        "//item[id:s]{ //listitem[id:s] }",
        "//person[id:s]{ /name[val] }",
    ];
    let mut found_any = 0;
    for qt in queries {
        let q = parse_xam(qt).unwrap();
        let direct = xam_core::evaluate(&q, &doc).unwrap();
        let (rws, _) = rewriting::rewrite(&q, &views, &s);
        for rw in &rws {
            found_any += 1;
            let ev = algebra::Evaluator::with_document(store.catalog(), &doc);
            let got = ev.eval(&rw.plan).unwrap();
            assert_eq!(
                got.len(),
                direct.tuples.len(),
                "cardinality mismatch for {qt} via {:?}",
                rw.views_used
            );
            assert_eq!(got.schema, direct.schema, "schema mismatch for {qt}");
        }
    }
    assert!(found_any >= 5, "too few rewritings exercised: {found_any}");
}

/// The restricted (index) semantics composes with the storage layer:
/// a composite index XAM answers lookups through bindings.
#[test]
fn index_views_with_bindings() {
    use algebra::{Collection, Relation, Tuple, Value};
    let doc = generate::bib_document();
    let xam = parse_xam("//book[id:s,tag!]{ /n t:title[val!] }").unwrap();
    let bschema = xam_core::bindings::binding_schema(&xam);
    let bind = Tuple::new(vec![
        Value::str("book"),
        Value::Coll(Collection::list(vec![Tuple::new(vec![Value::str(
            "Data on the Web",
        )])])),
    ]);
    let bindings = Relation::new(bschema, vec![bind]);
    let res = xam_core::bindings::restricted_evaluate(&xam, &doc, &bindings).unwrap();
    assert_eq!(res.len(), 1);
}

/// Storage flexibility: the same query produces identical answers across
/// five different storage layouts (QEP catalogue, §2.1).
#[test]
fn physical_data_independence_across_layouts() {
    use std::collections::BTreeSet;
    let doc = generate::bib_document();
    let s = Summary::of_document(&doc);
    let mut answers: Vec<BTreeSet<String>> = Vec::new();
    for q in [
        storage::qep::qep1(&doc),
        storage::qep::qep6(&doc),
        storage::qep::qep7(&doc, &s),
    ] {
        let ev = algebra::Evaluator::with_document(&q.catalog, &doc);
        let rel = ev.eval(&q.plan).unwrap();
        // compare on the (author, title) value pairs
        let set: BTreeSet<String> = rel.tuples.iter().map(|t| format!("{t}")).collect();
        answers.push(set);
    }
    assert_eq!(answers[0].len(), 4);
    assert_eq!(answers[0], answers[1]);
    assert_eq!(answers[1], answers[2]);
}
