//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot fetch crates.io, so this vendored crate
//! implements the bench API surface the workspace uses — `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`, the
//! `criterion_group!`/`criterion_main!` macros and `black_box` — over a
//! small wall-clock harness: per sample it runs enough iterations to
//! fill a time slice, and reports the median per-iteration time.
//! There is no statistical regression analysis or HTML report.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(self, _d: Duration) -> Criterion {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, mut f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        run_one(&id.0, self.sample_size, &mut f);
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, mut f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.0);
        run_one(
            &label,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            &mut f,
        );
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    pub fn finish(self) {}
}

/// A benchmark identifier: `new("name", param)` or `from_parameter(p)`.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{param}"))
    }

    pub fn from_parameter(param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(param.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId(s)
    }
}

/// Passed to the measured closure; [`Bencher::iter`] runs the routine.
pub struct Bencher {
    /// (iterations, elapsed) per sample, filled by `iter`.
    samples: Vec<(u64, Duration)>,
    sample_count: usize,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // calibrate: run the routine until ~5 ms pass to pick the
        // per-sample iteration count
        let calibration_start = Instant::now();
        let mut calls = 0u64;
        while calibration_start.elapsed() < Duration::from_millis(5) {
            std_black_box(routine());
            calls += 1;
        }
        let per_iter = calibration_start.elapsed().as_secs_f64() / calls as f64;
        // target ≈10 ms per sample, capped so the whole bench stays fast
        let iters = ((0.010 / per_iter) as u64).clamp(1, 1_000_000);
        for _ in 0..self.sample_count {
            let t0 = Instant::now();
            for _ in 0..iters {
                std_black_box(routine());
            }
            self.samples.push((iters, t0.elapsed()));
        }
    }
}

fn run_one(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_count: sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    let mut per_iter: Vec<f64> = b
        .samples
        .iter()
        .map(|(n, d)| d.as_secs_f64() / *n as f64)
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let median = per_iter[per_iter.len() / 2];
    let lo = per_iter[0];
    let hi = per_iter[per_iter.len() - 1];
    println!(
        "{label:<40} time: [{} {} {}]",
        fmt_time(lo),
        fmt_time(median),
        fmt_time(hi)
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// `criterion_group! { name = benches; config = ...; targets = a, b }`
/// or `criterion_group!(benches, a, b)`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// `criterion_main!(benches)` — generates `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
