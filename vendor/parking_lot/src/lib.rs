//! Offline stand-in for `parking_lot`.
//!
//! Wraps [`std::sync`] primitives behind parking_lot's non-poisoning
//! API (`lock()`/`read()`/`write()` return guards directly). Poisoned
//! locks are recovered rather than propagated: a panic while holding a
//! lock in this workspace leaves data that is only ever a cache, safe
//! to keep serving.

use std::sync;

/// A mutual-exclusion lock with a non-poisoning `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with non-poisoning `read()`/`write()`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}
