//! Offline stand-in for the `proptest` crate.
//!
//! Implements the API subset this workspace's property tests use: the
//! [`proptest!`] macro with `#![proptest_config(...)]`, `x in strategy`
//! bindings, `prop_assert!`/`prop_assert_eq!`, range and tuple
//! strategies, `prop::collection::vec` and `Strategy::prop_map`.
//!
//! Cases are generated from deterministic per-index seeds. There is no
//! shrinking: a failing case reports its seed and message and panics.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The `prop::` namespace the upstream prelude exposes.
    pub mod prop {
        pub use crate::collection;
    }
}

/// The entry macro. Supported grammar (the subset the workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///     #[test]
///     fn name(x in strategy, y in strategy) { body }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with ($cfg) $($rest)*);
    };
    (@with ($cfg:expr)
        $($(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                $crate::test_runner::run(stringify!($name), &config, |rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), rng);)+
                    let mut one_case = move || -> $crate::test_runner::TestCaseResult {
                        $body
                        Ok(())
                    };
                    one_case()
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `{:?}` != `{:?}`", l, r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l == *r, $($fmt)*);
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` == `{:?}`", l, r);
            }
        }
    };
}
