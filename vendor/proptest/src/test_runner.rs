//! The case loop: deterministic seeds, panic on first failure.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct Config {
    pub cases: u32,
}

impl Config {
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Config {
        Config { cases: 64 }
    }
}

/// A failed property case.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Run `cases` iterations of `case`, each with an RNG seeded
/// deterministically from the test name and the case index, so failures
/// are reproducible run-to-run without a persistence file.
pub fn run(name: &str, config: &Config, mut case: impl FnMut(&mut SmallRng) -> TestCaseResult) {
    let name_hash: u64 = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3)
    });
    for i in 0..config.cases {
        let mut rng = SmallRng::seed_from_u64(name_hash ^ (i as u64).wrapping_mul(0x9E37));
        if let Err(e) = case(&mut rng) {
            panic!("property `{name}` failed at case {i}/{}: {e}", config.cases);
        }
    }
}
