//! Value-generation strategies (no shrinking).

use rand::rngs::SmallRng;
use rand::Rng;

/// A source of random values of one type. Unlike upstream proptest, a
/// strategy here *is* its generator — there is no value tree, hence no
/// shrinking — but the surface (`prop_map`, range/tuple strategies)
/// matches what the workspace tests use.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut SmallRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
