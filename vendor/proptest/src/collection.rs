//! Collection strategies: `prop::collection::vec`.

use rand::rngs::SmallRng;
use rand::Rng;

use crate::strategy::Strategy;

/// A strategy producing `Vec`s of `element` values with a length drawn
/// from `size`.
pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

pub struct VecStrategy<S> {
    element: S,
    size: core::ops::Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
