//! Offline stand-in for `tracing`.
//!
//! Implements the slice of the `tracing` API this workspace uses:
//! leveled events (`trace!` … `error!`), named timed spans
//! (`trace_span!` … `info_span!` with an RAII [`Entered`] guard), and a
//! process-global [`Subscriber`] installed once through
//! [`dispatch::set_global_default`]. Until a subscriber is installed
//! every macro is a single relaxed atomic load — instrumented code pays
//! nothing in the default configuration.
//!
//! Deliberate simplifications vs the real crate: events carry a target,
//! a level and a pre-formatted message (structured fields are folded
//! into the message by the macros); spans report their wall-clock
//! elapsed time on exit instead of tracking enter/exit pairs per thread.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Event/span severity. Ordered from most verbose to most severe:
/// `TRACE < DEBUG < INFO < WARN < ERROR`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Level(u8);

impl Level {
    pub const TRACE: Level = Level(0);
    pub const DEBUG: Level = Level(1);
    pub const INFO: Level = Level(2);
    pub const WARN: Level = Level(3);
    pub const ERROR: Level = Level(4);

    pub fn as_str(self) -> &'static str {
        match self.0 {
            0 => "TRACE",
            1 => "DEBUG",
            2 => "INFO",
            3 => "WARN",
            _ => "ERROR",
        }
    }

    /// Parse a directive level name (case-insensitive).
    pub fn from_str_loose(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "trace" => Some(Level::TRACE),
            "debug" => Some(Level::DEBUG),
            "info" => Some(Level::INFO),
            "warn" | "warning" => Some(Level::WARN),
            "error" => Some(Level::ERROR),
            _ => None,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Receiver of events and span notifications.
pub trait Subscriber: Send + Sync {
    /// Is anything at this `(level, target)` wanted? The macros call this
    /// before formatting, so disabled events never allocate.
    fn enabled(&self, level: Level, target: &str) -> bool;
    /// An event whose message has been formatted by the caller.
    fn event(&self, level: Level, target: &str, message: fmt::Arguments<'_>);
    /// A span was entered.
    fn span_enter(&self, _level: Level, _target: &str, _name: &str) {}
    /// A span guard was dropped after `elapsed` wall-clock time.
    fn span_exit(&self, _level: Level, _target: &str, _name: &str, _elapsed: Duration) {}
}

static SUBSCRIBER: OnceLock<Box<dyn Subscriber>> = OnceLock::new();
static ACTIVE: AtomicBool = AtomicBool::new(false);

/// Installing and querying the global subscriber.
pub mod dispatch {
    use super::*;

    /// Error returned when a global subscriber is already installed.
    #[derive(Debug)]
    pub struct SetGlobalDefaultError;

    impl fmt::Display for SetGlobalDefaultError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("a global tracing subscriber has already been set")
        }
    }

    impl std::error::Error for SetGlobalDefaultError {}

    /// Install the process-wide subscriber. Fails if one is already set.
    pub fn set_global_default(sub: Box<dyn Subscriber>) -> Result<(), SetGlobalDefaultError> {
        SUBSCRIBER.set(sub).map_err(|_| SetGlobalDefaultError)?;
        ACTIVE.store(true, Ordering::Release);
        Ok(())
    }

    /// Has a subscriber been installed?
    pub fn has_global_default() -> bool {
        ACTIVE.load(Ordering::Acquire)
    }
}

// ------------------------------------------------------------------
// macro support (public because macros expand in downstream crates)

#[doc(hidden)]
#[inline]
pub fn __enabled(level: Level, target: &str) -> bool {
    if !ACTIVE.load(Ordering::Relaxed) {
        return false;
    }
    SUBSCRIBER.get().is_some_and(|s| s.enabled(level, target))
}

#[doc(hidden)]
pub fn __event(level: Level, target: &str, message: fmt::Arguments<'_>) {
    if let Some(s) = SUBSCRIBER.get() {
        s.event(level, target, message);
    }
}

#[doc(hidden)]
pub fn __span_enter(level: Level, target: &'static str, name: &'static str) {
    if let Some(s) = SUBSCRIBER.get() {
        s.span_enter(level, target, name);
    }
}

#[doc(hidden)]
pub fn __span_exit(level: Level, target: &'static str, name: &'static str, elapsed: Duration) {
    if let Some(s) = SUBSCRIBER.get() {
        s.span_exit(level, target, name, elapsed);
    }
}

// ------------------------------------------------------------------
// spans

/// A named span. Disabled spans (no subscriber, or filtered out at
/// creation) carry no state and enter/exit for free.
#[derive(Debug, Clone)]
pub struct Span {
    meta: Option<(Level, &'static str, &'static str)>,
}

impl Span {
    #[doc(hidden)]
    pub fn __new(level: Level, target: &'static str, name: &'static str) -> Span {
        let meta = __enabled(level, target).then_some((level, target, name));
        Span { meta }
    }

    /// A span that never reports anywhere.
    pub fn none() -> Span {
        Span { meta: None }
    }

    /// Enter the span; the returned guard reports elapsed time on drop.
    pub fn enter(&self) -> Entered<'_> {
        if let Some((level, target, name)) = self.meta {
            __span_enter(level, target, name);
            Entered {
                span: self,
                start: Some(Instant::now()),
            }
        } else {
            Entered {
                span: self,
                start: None,
            }
        }
    }

    /// Run `f` inside the span.
    pub fn in_scope<T>(&self, f: impl FnOnce() -> T) -> T {
        let _g = self.enter();
        f()
    }
}

/// RAII guard of an entered [`Span`].
pub struct Entered<'a> {
    span: &'a Span,
    start: Option<Instant>,
}

impl Drop for Entered<'_> {
    fn drop(&mut self) {
        if let (Some((level, target, name)), Some(start)) = (self.span.meta, self.start) {
            __span_exit(level, target, name, start.elapsed());
        }
    }
}

// ------------------------------------------------------------------
// macros

/// Emit an event at an explicit level: `event!(Level::INFO, "x = {}", x)`
/// or `event!(target: "uload::eval", Level::DEBUG, "...")`.
#[macro_export]
macro_rules! event {
    (target: $target:expr, $level:expr, $($arg:tt)+) => {{
        if $crate::__enabled($level, $target) {
            $crate::__event($level, $target, format_args!($($arg)+));
        }
    }};
    ($level:expr, $($arg:tt)+) => {
        $crate::event!(target: module_path!(), $level, $($arg)+)
    };
}

#[macro_export]
macro_rules! trace {
    (target: $target:expr, $($arg:tt)+) => { $crate::event!(target: $target, $crate::Level::TRACE, $($arg)+) };
    ($($arg:tt)+) => { $crate::event!($crate::Level::TRACE, $($arg)+) };
}

#[macro_export]
macro_rules! debug {
    (target: $target:expr, $($arg:tt)+) => { $crate::event!(target: $target, $crate::Level::DEBUG, $($arg)+) };
    ($($arg:tt)+) => { $crate::event!($crate::Level::DEBUG, $($arg)+) };
}

#[macro_export]
macro_rules! info {
    (target: $target:expr, $($arg:tt)+) => { $crate::event!(target: $target, $crate::Level::INFO, $($arg)+) };
    ($($arg:tt)+) => { $crate::event!($crate::Level::INFO, $($arg)+) };
}

#[macro_export]
macro_rules! warn {
    (target: $target:expr, $($arg:tt)+) => { $crate::event!(target: $target, $crate::Level::WARN, $($arg)+) };
    ($($arg:tt)+) => { $crate::event!($crate::Level::WARN, $($arg)+) };
}

#[macro_export]
macro_rules! error {
    (target: $target:expr, $($arg:tt)+) => { $crate::event!(target: $target, $crate::Level::ERROR, $($arg)+) };
    ($($arg:tt)+) => { $crate::event!($crate::Level::ERROR, $($arg)+) };
}

/// Create a [`Span`]: `span!(Level::DEBUG, "rewrite")`, optionally with
/// `target:`.
#[macro_export]
macro_rules! span {
    (target: $target:expr, $level:expr, $name:expr) => {
        $crate::Span::__new($level, $target, $name)
    };
    ($level:expr, $name:expr) => {
        $crate::Span::__new($level, module_path!(), $name)
    };
}

#[macro_export]
macro_rules! trace_span {
    (target: $target:expr, $name:expr) => { $crate::span!(target: $target, $crate::Level::TRACE, $name) };
    ($name:expr) => {
        $crate::span!($crate::Level::TRACE, $name)
    };
}

#[macro_export]
macro_rules! debug_span {
    (target: $target:expr, $name:expr) => { $crate::span!(target: $target, $crate::Level::DEBUG, $name) };
    ($name:expr) => {
        $crate::span!($crate::Level::DEBUG, $name)
    };
}

#[macro_export]
macro_rules! info_span {
    (target: $target:expr, $name:expr) => { $crate::span!(target: $target, $crate::Level::INFO, $name) };
    ($name:expr) => {
        $crate::span!($crate::Level::INFO, $name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Mutex;

    struct Recorder {
        events: Mutex<Vec<(Level, String, String)>>,
        spans: AtomicUsize,
    }

    impl Subscriber for Recorder {
        fn enabled(&self, level: Level, _target: &str) -> bool {
            level >= Level::DEBUG
        }
        fn event(&self, level: Level, target: &str, message: fmt::Arguments<'_>) {
            self.events
                .lock()
                .unwrap()
                .push((level, target.to_string(), message.to_string()));
        }
        fn span_exit(&self, _l: Level, _t: &str, _n: &str, _e: Duration) {
            self.spans.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn events_and_spans_reach_the_subscriber() {
        // the global can only be set once per process: this test owns it
        static REC: OnceLock<&'static Recorder> = OnceLock::new();
        let rec: &'static Recorder = Box::leak(Box::new(Recorder {
            events: Mutex::new(Vec::new()),
            spans: AtomicUsize::new(0),
        }));
        assert!(REC.set(rec).is_ok());

        struct Fwd;
        impl Subscriber for Fwd {
            fn enabled(&self, level: Level, target: &str) -> bool {
                REC.get().unwrap().enabled(level, target)
            }
            fn event(&self, level: Level, target: &str, message: fmt::Arguments<'_>) {
                REC.get().unwrap().event(level, target, message);
            }
            fn span_exit(&self, l: Level, t: &str, n: &str, e: Duration) {
                REC.get().unwrap().span_exit(l, t, n, e);
            }
        }

        assert!(!dispatch::has_global_default());
        trace!("invisible before install");
        dispatch::set_global_default(Box::new(Fwd)).unwrap();
        assert!(dispatch::set_global_default(Box::new(Fwd)).is_err());

        trace!("filtered out");
        debug!("kept {}", 1);
        warn!(target: "custom", "warned");
        let span = debug_span!("work");
        span.in_scope(|| ());
        let filtered = trace_span!("filtered");
        filtered.in_scope(|| ());

        let events = rec.events.lock().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].0, Level::DEBUG);
        assert_eq!(events[0].2, "kept 1");
        assert_eq!(events[1].1, "custom");
        assert_eq!(rec.spans.load(Ordering::Relaxed), 1);
        assert!(Level::WARN > Level::DEBUG);
        assert_eq!(Level::from_str_loose("WARN"), Some(Level::WARN));
    }
}
