//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements exactly the API subset the workspace uses: the
//! [`Rng`]/[`SeedableRng`] traits, [`rngs::SmallRng`] (xoshiro256++
//! seeded by splitmix64), integer/float `gen_range` and `gen_bool`.
//! Streams are deterministic per seed but deliberately *not* identical
//! to upstream `rand` — no test in this workspace depends on upstream
//! value streams, only on seeded determinism.

pub mod rngs;

/// Minimal core trait: a source of uniformly distributed `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types `gen_range` can sample uniformly. The generic `SampleRange`
/// impls below unify the range's element type with the result type, so
/// integer-literal inference works as with upstream rand.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + if inclusive { 1 } else { 0 };
                assert!(span > 0, "empty gen_range");
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                assert!(lo < hi, "empty gen_range");
                // 53 uniform mantissa bits in [0, 1)
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                lo + (hi - lo) * unit as $t
            }
        }
    )*};
}

uniform_float!(f32, f64);

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(*self.start(), *self.end(), true, rng)
    }
}

/// The user-facing sampling trait (blanket-implemented for every
/// [`RngCore`], as in upstream `rand`).
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding by a single `u64`, the only constructor the workspace uses.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}
