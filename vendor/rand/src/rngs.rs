//! The small fast generator: xoshiro256++ with splitmix64 seeding.

use crate::{RngCore, SeedableRng};

/// A small, fast, non-cryptographic PRNG (xoshiro256++).
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

/// The workspace never relies on `StdRng`'s cryptographic quality, so the
/// stand-in aliases it to the same generator.
pub type StdRng = SmallRng;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut st = seed;
        let s = [
            splitmix64(&mut st),
            splitmix64(&mut st),
            splitmix64(&mut st),
            splitmix64(&mut st),
        ];
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(1.0f64..2.0);
            assert!((1.0..2.0).contains(&f));
            let i = r.gen_range(1i64..=3);
            assert!((1..=3).contains(&i));
        }
        // gen_bool extremes
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
