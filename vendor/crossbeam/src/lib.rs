//! Offline stand-in for `crossbeam`.
//!
//! The workspace only needs scoped worker pools; since Rust 1.63 the
//! standard library provides structured scoped threads, so this shim
//! simply re-exports them under the `crossbeam::thread` path the engine
//! code uses. Spawn with `s.spawn(|| ...)` (std signature — no `|_|`
//! scope argument as in upstream crossbeam 0.8).

pub mod thread {
    pub use std::thread::{scope, Scope, ScopedJoinHandle};
}
