//! `uload` — command-line driver for the XAM framework.
//!
//! ```text
//! uload summary <file.xml>                 # print the path summary
//! uload xam <file.xml> '<xam>'             # evaluate a XAM over the file
//! uload query <file.xml> '<xquery>'        # run an XQuery directly
//! uload rewrite <file.xml> '<xquery>' '<name>=<xam>' [more views…] [--limit N]
//!                                          # answer the query from views only
//!                                          # (--limit streams and stops early)
//! uload contain <file.xml> '<xam p>' '<xam q>' [--threads N]
//!                                          # decide p ⊆_S q under the summary
//! ```
//!
//! Example:
//!
//! ```text
//! uload rewrite bib.xml \
//!   'for $b in doc("bib.xml")//book return <r>{$b/title}</r>' \
//!   'v1=//book[id:s]{ /n? t:title[cont] }'
//! ```

use std::process::ExitCode;

use uload::prelude::*;

fn main() -> ExitCode {
    init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> Error {
    Error::Config(
        "usage:\n  uload summary <file.xml>\n  uload xam <file.xml> '<xam>'\n  \
         uload query <file.xml> '<xquery>'\n  \
         uload rewrite <file.xml> '<xquery>' '<name>=<xam>'… [--limit N]\n  \
         uload contain <file.xml> '<xam p>' '<xam q>' [--threads N]"
            .to_string(),
    )
}

fn load(path: &str) -> Result<Document> {
    let text = std::fs::read_to_string(path).map_err(|e| Error::Io(format!("{path}: {e}")))?;
    parse_document(&text)
}

fn run(args: &[String]) -> Result<()> {
    let cmd = args.first().ok_or_else(usage)?;
    match cmd.as_str() {
        "summary" => {
            let doc = load(args.get(1).ok_or_else(usage)?)?;
            let s = Summary::of_document(&doc);
            println!(
                "{} nodes, {} summary paths, {} strong edges, {} one-to-one",
                doc.len(),
                s.len(),
                s.strong_edge_count(),
                s.one_to_one_edge_count()
            );
            print!("{s}");
            Ok(())
        }
        "xam" => {
            let doc = load(args.get(1).ok_or_else(usage)?)?;
            let xam = parse_xam(args.get(2).ok_or_else(usage)?)?;
            println!("{xam}");
            let rel = uload::evaluate_xam(&xam, &doc)?;
            println!("schema: {}", rel.schema);
            for t in &rel.tuples {
                println!("{t}");
            }
            println!("({} tuples)", rel.len());
            Ok(())
        }
        "query" => {
            let doc = load(args.get(1).ok_or_else(usage)?)?;
            let out = uload::execute_query(args.get(2).ok_or_else(usage)?, &doc)?;
            for item in &out.items {
                println!("{}", item.xml);
            }
            println!(
                "({} results, plan fingerprint {:016x})",
                out.items.len(),
                out.plan_fingerprint
            );
            Ok(())
        }
        "rewrite" => {
            let doc = load(args.get(1).ok_or_else(usage)?)?;
            let query = args.get(2).ok_or_else(usage)?;
            let mut views: Vec<&str> = Vec::new();
            let mut limit: Option<usize> = None;
            let mut i = 3;
            while i < args.len() {
                if args[i] == "--limit" {
                    limit = Some(
                        args.get(i + 1)
                            .ok_or_else(usage)?
                            .parse::<usize>()
                            .map_err(|e| Error::Config(format!("--limit: {e}")))?,
                    );
                    i += 2;
                } else {
                    views.push(&args[i]);
                    i += 1;
                }
            }
            if views.is_empty() {
                return Err(Error::Config(
                    "rewrite needs at least one view (<name>=<xam>)".into(),
                ));
            }
            let mut engine = Uload::builder()
                .document(&doc)
                .config(EngineConfig::default())
                .build()?;
            for def in views {
                let (name, text) = def.split_once('=').ok_or_else(|| {
                    Error::Config(format!("bad view definition `{def}` (want name=xam)"))
                })?;
                engine.add_view_text(name, text, &doc)?;
                println!(
                    "materialized view `{name}` ({} tuples)",
                    engine.store().relation(name).map(|r| r.len()).unwrap_or(0)
                );
            }
            match limit {
                // stream through the pipelined executor and stop early:
                // closing the cursor tree skips the rows never looked at
                Some(n) => {
                    let mut results = engine.query(query, &doc)?;
                    for rw in results.rewritings() {
                        println!("rewriting over {:?}: {}", rw.views_used, rw.plan);
                    }
                    let mut count = 0usize;
                    for item in results.by_ref().take(n) {
                        println!("{}", item?);
                        count += 1;
                    }
                    results.close();
                    println!("({count} results, limit {n}, streamed from views only)");
                }
                None => {
                    let (out, used) = engine.answer(query, &doc)?;
                    for rw in &used {
                        println!("rewriting over {:?}: {}", rw.views_used, rw.plan);
                    }
                    for line in &out {
                        println!("{line}");
                    }
                    println!("({} results, from views only)", out.len());
                }
            }
            Ok(())
        }
        "contain" => {
            let doc = load(args.get(1).ok_or_else(usage)?)?;
            let s = Summary::of_document(&doc);
            let p = parse_xam(args.get(2).ok_or_else(usage)?)?;
            let q = parse_xam(args.get(3).ok_or_else(usage)?)?;
            let threads = match args.get(4).map(String::as_str) {
                Some("--threads") => args
                    .get(5)
                    .ok_or_else(usage)?
                    .parse::<usize>()
                    .map_err(|e| Error::Config(format!("--threads: {e}")))?,
                Some(other) => return Err(Error::Config(format!("unknown flag `{other}`"))),
                None => 1,
            };
            let opts = ContainOptions::default().with_threads(threads);
            let fwd = contain(&p, &q, &s, &opts);
            let bwd = contain(&q, &p, &s, &opts);
            println!(
                "p ⊆_S q: {}  (model: {} trees)",
                fwd.contained, fwd.model_size
            );
            println!(
                "q ⊆_S p: {}  (model: {} trees)",
                bwd.contained, bwd.model_size
            );
            println!("equivalent: {}", fwd.contained && bwd.contained);
            Ok(())
        }
        _ => Err(usage()),
    }
}
