//! `uload` — command-line driver for the XAM framework.
//!
//! ```text
//! uload summary <file.xml>                 # print the path summary
//! uload xam <file.xml> '<xam>'             # evaluate a XAM over the file
//! uload query <file.xml> '<xquery>'        # run an XQuery directly
//! uload rewrite <file.xml> '<xquery>' '<name>=<xam>' [more views…] [--limit N]
//!                                          # answer the query from views only
//!                                          # (--limit streams and stops early)
//! uload contain <file.xml> '<xam p>' '<xam q>' [--threads N]
//!                                          # decide p ⊆_S q under the summary
//! uload serve <file.xml> [--addr HOST:PORT | --unix PATH] [--slow-ms N] ['<name>=<xam>'…]
//!                                          # serve the document to clients
//!                                          # (--slow-ms: slow-query threshold)
//! uload client <ADDR> query '<xquery>'     # one query against a server
//! uload client <ADDR> explain '<xquery>'   # plan + cost/feedback JSON, no exec
//! uload client <ADDR> stats                # the session's profile JSON
//! uload client <ADDR> metrics              # server-wide metrics JSON
//! uload client <ADDR> slowlog              # drain the slow-query log
//! uload client <ADDR> shutdown             # stop a running server
//! ```
//!
//! `<ADDR>` is `HOST:PORT` for TCP or `unix:/path.sock` for a Unix
//! socket.
//!
//! Example:
//!
//! ```text
//! uload rewrite bib.xml \
//!   'for $b in doc("bib.xml")//book return <r>{$b/title}</r>' \
//!   'v1=//book[id:s]{ /n? t:title[cont] }'
//! ```

use std::process::ExitCode;

use uload::prelude::*;

fn main() -> ExitCode {
    init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> Error {
    Error::Config(
        "usage:\n  uload summary <file.xml>\n  uload xam <file.xml> '<xam>'\n  \
         uload query <file.xml> '<xquery>'\n  \
         uload rewrite <file.xml> '<xquery>' '<name>=<xam>'… [--limit N]\n  \
         uload contain <file.xml> '<xam p>' '<xam q>' [--threads N]\n  \
         uload serve <file.xml> [--addr HOST:PORT | --unix PATH] [--slow-ms N] ['<name>=<xam>'…]\n  \
         uload client <ADDR> (query '<xquery>' | explain '<xquery>' | stats | metrics | slowlog | shutdown)"
            .to_string(),
    )
}

/// `HOST:PORT` or `unix:/path.sock` → a [`BindAddr`].
fn parse_addr(s: &str) -> BindAddr {
    match s.strip_prefix("unix:") {
        Some(path) => BindAddr::Unix(path.into()),
        None => BindAddr::Tcp(s.to_string()),
    }
}

fn load(path: &str) -> Result<Document> {
    let text = std::fs::read_to_string(path).map_err(|e| Error::Io(format!("{path}: {e}")))?;
    parse_document(&text)
}

fn run(args: &[String]) -> Result<()> {
    let cmd = args.first().ok_or_else(usage)?;
    match cmd.as_str() {
        "summary" => {
            let doc = load(args.get(1).ok_or_else(usage)?)?;
            let s = Summary::of_document(&doc);
            println!(
                "{} nodes, {} summary paths, {} strong edges, {} one-to-one",
                doc.len(),
                s.len(),
                s.strong_edge_count(),
                s.one_to_one_edge_count()
            );
            print!("{s}");
            Ok(())
        }
        "xam" => {
            let doc = load(args.get(1).ok_or_else(usage)?)?;
            let xam = parse_xam(args.get(2).ok_or_else(usage)?)?;
            println!("{xam}");
            let rel = Uload::evaluate_xam(&xam, &doc)?;
            println!("schema: {}", rel.schema);
            for t in &rel.tuples {
                println!("{t}");
            }
            println!("({} tuples)", rel.len());
            Ok(())
        }
        "query" => {
            let doc = load(args.get(1).ok_or_else(usage)?)?;
            let out = Uload::execute_direct(args.get(2).ok_or_else(usage)?, &doc)?;
            for item in &out.items {
                println!("{}", item.xml);
            }
            println!(
                "({} results, plan fingerprint {:016x})",
                out.items.len(),
                out.plan_fingerprint
            );
            Ok(())
        }
        "rewrite" => {
            let doc = load(args.get(1).ok_or_else(usage)?)?;
            let query = args.get(2).ok_or_else(usage)?;
            let mut views: Vec<&str> = Vec::new();
            let mut limit: Option<usize> = None;
            let mut i = 3;
            while i < args.len() {
                if args[i] == "--limit" {
                    limit = Some(
                        args.get(i + 1)
                            .ok_or_else(usage)?
                            .parse::<usize>()
                            .map_err(|e| Error::Config(format!("--limit: {e}")))?,
                    );
                    i += 2;
                } else {
                    views.push(&args[i]);
                    i += 1;
                }
            }
            if views.is_empty() {
                return Err(Error::Config(
                    "rewrite needs at least one view (<name>=<xam>)".into(),
                ));
            }
            let mut engine = Uload::builder()
                .document(&doc)
                .config(EngineConfig::default())
                .build()?;
            for def in views {
                let (name, text) = def.split_once('=').ok_or_else(|| {
                    Error::Config(format!("bad view definition `{def}` (want name=xam)"))
                })?;
                engine.add_view_text(name, text, &doc)?;
                println!(
                    "materialized view `{name}` ({} tuples)",
                    engine.store().relation(name).map(|r| r.len()).unwrap_or(0)
                );
            }
            match limit {
                // stream through the pipelined executor and stop early:
                // closing the cursor tree skips the rows never looked at
                Some(n) => {
                    let mut results = engine.query(query, &doc)?;
                    for rw in results.rewritings() {
                        println!("rewriting over {:?}: {}", rw.views_used, rw.plan);
                    }
                    let mut count = 0usize;
                    for item in results.by_ref().take(n) {
                        println!("{}", item?);
                        count += 1;
                    }
                    results.close();
                    println!("({count} results, limit {n}, streamed from views only)");
                }
                None => {
                    let (out, used) = engine.answer(query, &doc)?;
                    for rw in &used {
                        println!("rewriting over {:?}: {}", rw.views_used, rw.plan);
                    }
                    for line in &out {
                        println!("{line}");
                    }
                    println!("({} results, from views only)", out.len());
                }
            }
            Ok(())
        }
        "contain" => {
            let doc = load(args.get(1).ok_or_else(usage)?)?;
            let s = Summary::of_document(&doc);
            let p = parse_xam(args.get(2).ok_or_else(usage)?)?;
            let q = parse_xam(args.get(3).ok_or_else(usage)?)?;
            let threads = match args.get(4).map(String::as_str) {
                Some("--threads") => args
                    .get(5)
                    .ok_or_else(usage)?
                    .parse::<usize>()
                    .map_err(|e| Error::Config(format!("--threads: {e}")))?,
                Some(other) => return Err(Error::Config(format!("unknown flag `{other}`"))),
                None => 1,
            };
            let opts = ContainOptions::default().with_threads(threads);
            let fwd = contain(&p, &q, &s, &opts);
            let bwd = contain(&q, &p, &s, &opts);
            println!(
                "p ⊆_S q: {}  (model: {} trees)",
                fwd.contained, fwd.model_size
            );
            println!(
                "q ⊆_S p: {}  (model: {} trees)",
                bwd.contained, bwd.model_size
            );
            println!("equivalent: {}", fwd.contained && bwd.contained);
            Ok(())
        }
        "serve" => {
            let doc = load(args.get(1).ok_or_else(usage)?)?;
            let mut addr = BindAddr::Tcp("127.0.0.1:7711".into());
            let mut views: Vec<&str> = Vec::new();
            let mut config = ServerConfig::default();
            let mut i = 2;
            while i < args.len() {
                match args[i].as_str() {
                    "--addr" => {
                        addr = BindAddr::Tcp(args.get(i + 1).ok_or_else(usage)?.clone());
                        i += 2;
                    }
                    "--unix" => {
                        addr = BindAddr::Unix(args.get(i + 1).ok_or_else(usage)?.into());
                        i += 2;
                    }
                    "--slow-ms" => {
                        let ms = args
                            .get(i + 1)
                            .ok_or_else(usage)?
                            .parse::<u64>()
                            .map_err(|e| Error::Config(format!("--slow-ms: {e}")))?;
                        let capacity = config.slowlog_capacity;
                        config =
                            config.with_slowlog(std::time::Duration::from_millis(ms), capacity);
                        i += 2;
                    }
                    v => {
                        views.push(v);
                        i += 1;
                    }
                }
            }
            let mut engine = Uload::builder()
                .document(&doc)
                .config(EngineConfig::default())
                .build()?;
            for def in views {
                let (name, text) = def.split_once('=').ok_or_else(|| {
                    Error::Config(format!("bad view definition `{def}` (want name=xam)"))
                })?;
                engine.add_view_text(name, text, &doc)?;
            }
            let server = Server::start(config.with_addr(addr), engine, DocumentHandle::new(doc))?;
            println!(
                "serving on {} (stop with `uload client <ADDR> shutdown`)",
                server.addr()
            );
            server.wait();
            println!("server stopped");
            Ok(())
        }
        "client" => {
            let addr = parse_addr(args.get(1).ok_or_else(usage)?);
            let mut client = Client::connect(&addr)?;
            match args.get(2).map(String::as_str) {
                Some("query") => {
                    let reply = client.query(args.get(3).ok_or_else(usage)?)?;
                    for row in &reply.rows {
                        println!("{row}");
                    }
                    println!(
                        "({} results, cached={}, fp={:016x}, v{}, {:.3} ms server-side)",
                        reply.rows.len(),
                        reply.cached,
                        reply.fingerprint,
                        reply.version,
                        reply.ns as f64 / 1e6
                    );
                    client.quit()
                }
                Some("explain") => {
                    println!("{}", client.explain_json(args.get(3).ok_or_else(usage)?)?);
                    client.quit()
                }
                Some("stats") => {
                    println!("{}", client.stats_json()?);
                    client.quit()
                }
                Some("metrics") => {
                    println!("{}", client.metrics_json()?);
                    client.quit()
                }
                Some("slowlog") => {
                    println!("{}", client.slowlog_json()?);
                    client.quit()
                }
                Some("shutdown") => client.shutdown_server(),
                _ => Err(usage()),
            }
        }
        _ => Err(usage()),
    }
}
