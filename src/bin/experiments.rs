//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release --bin experiments            # everything
//! cargo run --release --bin experiments -- fig4_13 # one experiment
//! cargo run --release --bin experiments -- quick   # reduced set sizes
//! cargo run --release --bin experiments -- feedback quick # one, reduced
//! ```
//!
//! Experiments (ids from DESIGN.md):
//! `fig4_13` (datasets & summaries), `fig4_14_queries` (XMark query
//! pattern containment), `fig4_14_synthetic` (synthetic containment,
//! XMark summary), `fig4_15` (DBLP), `optional_ablation`, `sec5_6`
//! (rewriting), `qep_catalogue` (§2.1 plans), `minimize` (§4.5),
//! `twig` (E10 holistic twig-join ablation; writes `BENCH_twig.json`),
//! `pipeline` (E11 pipelined batch executor vs materialized evaluation;
//! writes `BENCH_pipeline.json`), `skip` (E12 skip-index × summary-
//! pruning access-method grid; writes `BENCH_skip.json`), `server`
//! (E13 multi-client query server: warm result-cache speedup plus a
//! QPS/latency sweep over client counts; writes `BENCH_server.json`),
//! `vector` (E14 columnar-kernel dense-parity grid: scalar linear vs
//! skip-indexed vs columnar; writes `BENCH_vector.json`), `feedback`
//! (E15 feedback-driven adaptive planning: cold catalog estimates vs a
//! replanned pass under measured cardinalities on a skewed document;
//! writes `BENCH_feedback.json`).
//!
//! `--profile` runs one view-backed query with `EXPLAIN ANALYZE` and
//! prints the rendered profile; `--profile-json` prints the same profile
//! as JSON (nothing else goes to stdout, so it pipes cleanly). Set
//! `ULOAD_LOG=uload=debug` (or any `target=level` filter) to stream the
//! engine's tracing output to stderr during any experiment.

use rewriting::EngineOptions;
use uload_bench::pattern_gen::GenConfig;
use uload_bench::{datasets, experiments};

fn main() {
    uload::init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let profile_json = args.iter().any(|a| a == "--profile-json");
    if profile_json || args.iter().any(|a| a == "--profile") {
        profile_demo(profile_json);
        return;
    }
    let quick = args.iter().any(|a| a == "quick");
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(1);
    // `quick` and `all` are modifiers, not experiment names: `feedback
    // quick` runs just E15 at reduced size, `quick` alone runs everything
    let want = |name: &str| -> bool {
        let named: Vec<&String> = args
            .iter()
            .filter(|a| {
                *a != "--threads" && *a != "quick" && *a != "all" && a.parse::<usize>().is_err()
            })
            .collect();
        named.is_empty() || named.iter().any(|a| *a == name)
    };
    let set_size = if quick { 10 } else { 40 };

    if want("fig4_13") {
        fig4_13();
    }
    if want("fig4_14_queries") {
        fig4_14_queries();
    }
    if want("fig4_14_synthetic") {
        fig4_14_synthetic(set_size, threads);
    }
    if want("fig4_15") {
        fig4_15(set_size, threads);
    }
    if want("optional_ablation") {
        optional_ablation(set_size.min(16));
    }
    if want("sec5_6") {
        sec5_6(if quick { 2 } else { 4 }, threads);
    }
    if want("qep_catalogue") {
        qep_catalogue();
    }
    if want("minimize") {
        minimize();
    }
    if want("twig") {
        twig(quick);
    }
    if want("pipeline") {
        pipeline(quick);
    }
    if want("skip") {
        skip(quick);
    }
    if want("server") {
        server(quick);
    }
    if want("vector") {
        vector(quick);
    }
    if want("feedback") {
        feedback(quick);
    }
}

/// E15 — feedback-driven adaptive planning on a skewed document.
///
/// The document is built so the catalog's uniform estimates are badly
/// wrong: a handful of `item`s carry the real `item//name//keyword`
/// twig while decoy `person` subtrees — with *nested* names over long
/// keyword runs — blow up the cascade's inner descendant join. The cold
/// pass runs the knob-forced cascade arm with catalog estimates;
/// profiled runs feed the stats store; `replan_prepared` (the same call
/// the server's mispredict threshold triggers) then re-plans under
/// feedback, and the replanned pass runs the arm the measurements
/// picked with blended estimates. Per-pass arm mispredicts compare
/// *median* arm timings (the per-rep flag is a single-measurement ≥2×
/// test, which one noisy rep can flip). Writes `BENCH_feedback.json`.
fn feedback(quick: bool) {
    header("E15 — feedback-driven adaptive planning: cold vs replanned");
    let (items, people, decoy_keywords, nesting, observations) = if quick {
        (5usize, 10usize, 120usize, 12usize, 40usize)
    } else {
        (10, 30, 200, 20, 80)
    };
    let query = r#"doc("X")//item//name//keyword"#;

    // skewed document: a handful of items carry the item/name/keyword
    // twig, drowned by `person` decoys that repeat the name/keyword
    // shape — so the path summary cannot collapse the query onto one
    // view and the rewrite must join all three. The plan is right-deep,
    // and the decoy names are *nested* `nesting` deep: the cascade's
    // inner name⋈keyword descendant join pairs every decoy keyword with
    // each of its ancestor names — a multiplying intermediate the
    // selective item join then throws away — while the twig arm keeps
    // per-node solution lists and never enumerates a decoy (no item
    // opens above them). The catalog estimates the join output at the
    // keyword count; the measured output is `items` rows.
    let mut xml = String::from("<site>");
    for i in 0..items {
        // the bare keyword outside <name> keeps the path summary from
        // proving //item//name//keyword ≡ //item//keyword — without it
        // the rewrite drops the name view and the twig degenerates to a
        // single binary join
        xml.push_str(&format!(
            "<item><keyword>bare{i}</keyword><name><keyword>sale{i}</keyword></name></item>"
        ));
    }
    for _ in 0..people {
        xml.push_str("<person>");
        for _ in 0..nesting {
            xml.push_str("<name>");
        }
        for _ in 0..decoy_keywords {
            xml.push_str("<keyword>decoy</keyword>");
        }
        for _ in 0..nesting {
            xml.push_str("</name>");
        }
        xml.push_str("</person>");
    }
    xml.push_str("</site>");
    let doc = uload::parse_document(&xml).expect("skewed document");

    let build = |use_twigstack: bool| {
        let mut cfg = uload::EngineConfig {
            use_twigstack,
            ..Default::default()
        };
        // join-only rewriting: the three single-node views combine
        // through structural joins, which fuse into a real twig arm
        cfg.rewrite.allow_navigation = false;
        let mut u = uload::Uload::builder()
            .document(&doc)
            .config(cfg)
            .build()
            .expect("engine over skewed doc");
        u.add_view_text("v_items", "//item[id:s]", &doc)
            .expect("v_items");
        u.add_view_text("v_names", "//name[id:s]", &doc)
            .expect("v_names");
        u.add_view_text("v_kw", "//keyword[id:s,val]", &doc)
            .expect("v_kw");
        u
    };

    fn count_mispredicted(p: &uload::PlanNodeProfile) -> usize {
        usize::from(p.mispredicted) + p.children.iter().map(count_mispredicted).sum::<usize>()
    }
    fn median(mut ns: Vec<u64>) -> u64 {
        assert!(
            !ns.is_empty(),
            "no arm telemetry: the plan never fused a twig arm"
        );
        ns.sort_unstable();
        ns[ns.len() / 2]
    }

    // a pass = `observations` profiled runs on one engine; each run
    // records into the stats store, so estimates blend as it goes.
    // Arm misprediction is judged on median timings across the pass —
    // the same ≥2× rule the per-rep flag uses, minus per-rep noise.
    let run_pass = |u: &uload::Uload| {
        let mut first_nodes = 0usize;
        let mut last_nodes = 0usize;
        let mut chosen_ns = Vec::new();
        let mut alt_ns = Vec::new();
        let mut rows = 0usize;
        for rep in 0..observations {
            let (out, _, profile) = u.answer_profiled(query, &doc).expect("profiled answer");
            rows = out.len();
            let nodes = count_mispredicted(&profile.plan);
            if rep == 0 {
                first_nodes = nodes;
            }
            last_nodes = nodes;
            if let Some(arm) = &profile.arm {
                chosen_ns.push(arm.actual_chosen_ns);
                alt_ns.push(arm.actual_alternative_ns);
            }
        }
        let med_chosen = median(chosen_ns);
        let med_alt = median(alt_ns);
        let arm_mispredicts = usize::from(med_chosen >= 2 * med_alt);
        (
            first_nodes,
            last_nodes,
            arm_mispredicts,
            med_chosen,
            med_alt,
            rows,
        )
    };

    // cold pass: the knob forces the cascade arm — the wrong choice for
    // a three-level twig — and the first run sees pure catalog estimates
    let cold_engine = build(false);
    let (cold_nodes, _, cold_arm_mis, cold_median_ns, cold_alt_ns, rows) = run_pass(&cold_engine);

    // re-plan under the stats the cold pass recorded — the same call the
    // server makes when the rollup crosses its mispredict threshold
    let prep_cold = cold_engine.prepare_query(query).expect("cold prepare");
    let prep = cold_engine
        .replan_prepared(&prep_cold, 0)
        .expect("feedback replan");
    let fingerprint_changed = prep.fingerprint() != prep_cold.fingerprint();

    // replanned pass: run the arm feedback picked; profiled runs keep
    // recording, so the final run reports blended-estimate mispredicts
    let replanned_engine = build(prep.arm() == "twig");
    let (_, repl_nodes, repl_arm_mis, repl_median_ns, repl_alt_ns, repl_rows) =
        run_pass(&replanned_engine);
    assert_eq!(rows, repl_rows, "feedback changed answers");

    let speedup = cold_median_ns as f64 / repl_median_ns.max(1) as f64;
    println!(
        "document: {items} items with name/keyword, {people} decoy persons x {nesting} nested names x {decoy_keywords} keywords; {rows} result rows"
    );
    println!(
        "{:<10} {:>9} {:>14} {:>15} {:>13} {:>12} {:>12}",
        "pass", "arm", "source", "nodes mispred.", "arm mispred.", "median (ns)", "alt (ns)"
    );
    println!(
        "{:<10} {:>9} {:>14} {:>15} {:>13} {:>12} {:>12}",
        "cold",
        prep_cold.arm(),
        prep_cold.arm_source(),
        cold_nodes,
        cold_arm_mis,
        cold_median_ns,
        cold_alt_ns
    );
    println!(
        "{:<10} {:>9} {:>14} {:>15} {:>13} {:>12} {:>12}",
        "replanned",
        prep.arm(),
        prep.arm_source(),
        repl_nodes,
        repl_arm_mis,
        repl_median_ns,
        repl_alt_ns
    );
    println!(
        "replan: epoch {} (fingerprint {}), median speedup {speedup:.2}x",
        prep.epoch(),
        if fingerprint_changed {
            "changed"
        } else {
            "kept"
        },
    );

    // machine-readable record (hand-rolled JSON — the workspace
    // deliberately carries no serializer dependency)
    let mut json = String::from("{\n  \"experiment\": \"feedback\",\n");
    json.push_str(&format!(
        "  \"document\": \"skewed({items} items, {people} persons x {nesting} nested names x {decoy_keywords} keywords)\",\n  \
         \"query\": \"{}\",\n  \"observations\": {observations},\n  \"rows\": {rows},\n",
        query.replace('\\', "\\\\").replace('"', "\\\"")
    ));
    json.push_str(&format!(
        "  \"cold\": {{\"arm\": \"{}\", \"arm_source\": \"{}\", \"nodes_mispredicted\": {cold_nodes}, \
         \"arm_mispredicts\": {cold_arm_mis}, \"median_ns\": {cold_median_ns}}},\n",
        prep_cold.arm(),
        prep_cold.arm_source()
    ));
    json.push_str(&format!(
        "  \"replanned\": {{\"arm\": \"{}\", \"arm_source\": \"{}\", \"epoch\": {}, \
         \"fingerprint_changed\": {fingerprint_changed}, \"nodes_mispredicted\": {repl_nodes}, \
         \"arm_mispredicts\": {repl_arm_mis}, \"median_ns\": {repl_median_ns}}},\n",
        prep.arm(),
        prep.arm_source(),
        prep.epoch()
    ));
    json.push_str(&format!(
        "  \"improvement\": {{\"median_speedup\": {speedup:.3}, \
         \"nodes_mispredicted_delta\": {}}}\n}}\n",
        cold_nodes as i64 - repl_nodes as i64
    ));
    match std::fs::write("BENCH_feedback.json", &json) {
        Ok(()) => println!("(wrote BENCH_feedback.json)"),
        Err(e) => eprintln!("(could not write BENCH_feedback.json: {e})"),
    }
    println!(
        "(measured cardinalities blend over the catalog's uniform guesses, so the replanned \
         pass runs the arm the observations picked and its estimates stop mispredicting)"
    );
}

fn profile_demo(json_out: bool) {
    let doc = uload::generate::xmark(8, 42);
    let mut cfg = uload::EngineConfig {
        profiling: true,
        ..Default::default()
    };
    // join-only rewriting (no navigation compensation): the two
    // single-node views can only combine through a structural join, which
    // fuses into a twig — so the profile carries both-arm telemetry
    cfg.rewrite.allow_navigation = false;
    let mut u = uload::Uload::builder()
        .document(&doc)
        .config(cfg)
        .build()
        .expect("engine over xmark");
    u.add_view_text("v_items", "//item[id:s]", &doc)
        .expect("v_items");
    u.add_view_text("v_names", "//name[id:s,val]", &doc)
        .expect("v_names");
    let q = r#"doc("X")//item/name"#;
    let (out, used, profile) = u.answer_profiled(q, &doc).expect("profiled answer");
    if json_out {
        // stdout carries only the JSON document
        println!("{}", profile.to_json().to_string_pretty());
        eprintln!("({} results via {:?})", out.len(), used[0].views_used);
    } else {
        header("EXPLAIN ANALYZE over the view-backed engine");
        println!("{}", profile.render());
        println!("({} results via views {:?})", out.len(), used[0].views_used);
    }
}

fn header(title: &str) {
    println!("\n==========================================================");
    println!("{title}");
    println!("==========================================================");
}

fn fig4_13() {
    header("E1 / Figure 4.13 — documents and their summaries");
    println!(
        "{:<14} {:>9} {:>6} {:>8} {:>8}",
        "dataset", "N", "|S|", "n_s", "n_1"
    );
    for r in experiments::fig4_13() {
        println!(
            "{:<14} {:>9} {:>6} {:>8} {:>8}",
            r.name, r.n, r.summary_size, r.strong_edges, r.one_to_one_edges
        );
    }
    println!("(paper: XMark summary ~548 nodes, stable across scales; DBLP ~40-50 nodes, many 1/+ edges)");
}

fn fig4_14_queries() {
    header("E2 / Figure 4.14 (top) — XMark query pattern containment");
    let ds = datasets::xmark_small();
    println!(
        "{:<6} {:>7} {:>10} {:>12}",
        "query", "|p|", "|mod_S(p)|", "time (µs)"
    );
    for r in experiments::fig4_14_queries(&ds) {
        println!(
            "{:<6} {:>7} {:>10} {:>12.1}",
            r.name, r.pattern_size, r.model_size, r.micros
        );
    }
    println!("(paper: small models except q7, whose unrelated variables blow the model up)");
}

fn synthetic_table(points: &[experiments::SyntheticPoint]) {
    println!(
        "{:>5} {:>3} {:>12} {:>6} {:>12} {:>6} {:>10}",
        "size", "r", "pos (µs)", "#pos", "neg (µs)", "#neg", "avg |mod|"
    );
    for p in points {
        println!(
            "{:>5} {:>3} {:>12.1} {:>6} {:>12.1} {:>6} {:>10.1}",
            p.size,
            p.return_count,
            p.positive_us,
            p.positives,
            p.negative_us,
            p.negatives,
            p.avg_model
        );
    }
}

fn fig4_14_synthetic(set_size: usize, threads: usize) {
    header("E3 / Figure 4.14 (bottom) — synthetic containment, XMark summary");
    let ds = datasets::xmark_small();
    let pts = experiments::synthetic_containment_with(
        &ds.summary,
        GenConfig::xmark,
        &[3, 5, 7, 9, 11, 13],
        &[1, 2, 3],
        set_size,
        2024,
        threads,
        None,
    );
    synthetic_table(&pts);
    println!("(paper: positive tests grow with size but stay moderate; negatives are faster — early exit)");
}

fn fig4_15(set_size: usize, threads: usize) {
    header("E4 / Figure 4.15 — synthetic containment, DBLP summary");
    let ds = datasets::dblp_small();
    let pts = experiments::synthetic_containment_with(
        &ds.summary,
        GenConfig::dblp,
        &[3, 5, 7, 9, 11, 13],
        &[1, 2, 3],
        set_size,
        2025,
        threads,
        None,
    );
    synthetic_table(&pts);
    println!("(paper: ≈4× faster than on the XMark summary — smaller canonical models)");
}

fn optional_ablation(set_size: usize) {
    header("E5 / §4.6 — optional-edge ablation (size 9, r = 2)");
    let ds = datasets::xmark_small();
    println!("{:>8} {:>14}", "P(opt)", "avg test (µs)");
    for (p, us) in experiments::optional_ablation(&ds, set_size) {
        println!("{:>8.1} {:>14.1}", p, us);
    }
    println!("(paper: optional edges slow containment ≈2× vs conjunctive — far from the exponential worst case)");
}

fn sec5_6(trials: usize, threads: usize) {
    header("E6 / §5.6 — rewriting performance vs view-set size");
    let ds = datasets::xmark_small();
    let eng = EngineOptions {
        threads,
        ..Default::default()
    };
    let pts = experiments::sec5_6_with(&ds, &[2, 5, 10], trials, &eng);
    println!(
        "{:>7} {:>12} {:>12} {:>10} {:>14} {:>12}",
        "#views", "pos (µs)", "neg (µs)", "avg #rw", "no-sid (µs)", "no-sid found"
    );
    for p in pts {
        println!(
            "{:>7} {:>12.0} {:>12.0} {:>10.1} {:>14.0} {:>12.2}",
            p.n_views,
            p.positive_us,
            p.negative_us,
            p.avg_found,
            p.positive_no_sid_us,
            p.no_sid_found_frac
        );
    }
    println!(
        "(paper: rewriting time grows with the view set; structural IDs enable more rewritings)"
    );
}

fn qep_catalogue() {
    header("E8 / §2.1 — the QEP catalogue: one query, many storage layouts");
    println!(
        "{:<52} {:>5} {:>6} {:>10}",
        "plan", "ops", "rows", "time (µs)"
    );
    for r in experiments::qep_catalogue() {
        println!(
            "{:<52} {:>5} {:>6} {:>10.1}",
            r.name, r.operators, r.rows, r.micros
        );
    }
    println!(
        "(q plans agree on results; indexes and blobs shrink plans — physical data independence)"
    );
}

fn minimize() {
    header("E9 / §4.5 — pattern minimization under summary constraints");
    for line in experiments::minimize_demo() {
        println!("{line}");
    }
}

fn twig(quick: bool) {
    header("E10 — holistic twig joins vs binary cascades");
    let (scale, reps) = if quick { (4, 3) } else { (15, 7) };
    let doc = uload::generate::xmark(scale, 42);
    let rows = experiments::twig_ablation(&doc, reps);
    println!(
        "{:<14} {:>8} {:>12} {:>12} {:>12} {:>8} {:>8}",
        "workload", "rows", "twig (ns)", "stack (ns)", "nested (ns)", "x stack", "x nested"
    );
    for r in &rows {
        println!(
            "{:<14} {:>8} {:>12} {:>12} {:>12} {:>8.2} {:>8.2}",
            r.name,
            r.rows,
            r.twig_ns,
            r.cascade_ns,
            r.nested_ns,
            r.speedup_vs_cascade(),
            r.speedup_vs_nested()
        );
    }
    // machine-readable record of the ablation (hand-rolled JSON — the
    // workspace deliberately carries no serializer dependency)
    let mut json = String::from("{\n  \"experiment\": \"twig_ablation\",\n");
    json.push_str(&format!(
        "  \"document\": \"xmark({scale}, 42)\",\n  \"reps\": {reps},\n  \"workloads\": [\n"
    ));
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"rows\": {}, \"twig_ns\": {}, \"stacktree_ns\": {}, \
             \"nestedloop_ns\": {}, \"speedup_vs_stacktree\": {:.3}, \"speedup_vs_nestedloop\": {:.3}}}{}\n",
            r.name,
            r.rows,
            r.twig_ns,
            r.cascade_ns,
            r.nested_ns,
            r.speedup_vs_cascade(),
            r.speedup_vs_nested(),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    match std::fs::write("BENCH_twig.json", &json) {
        Ok(()) => println!("(wrote BENCH_twig.json)"),
        Err(e) => eprintln!("(could not write BENCH_twig.json: {e})"),
    }
    println!(
        "(the holistic merge skips the cascade's intermediate pair lists; gains grow with depth)"
    );
}

fn skip(quick: bool) {
    header("E12 — skip-based twig joins: seek indexes × summary pruning");
    let (scale, reps) = if quick { (4, 3) } else { (15, 7) };
    let doc = uload::generate::xmark(scale, 42);
    let rows = experiments::skip_ablation(&doc, reps);
    println!(
        "{:<15} {:>7} {:>11} {:>11} {:>11} {:>11} {:>7} {:>9} {:>9}",
        "workload",
        "rows",
        "linear(ns)",
        "+skip(ns)",
        "+prune(ns)",
        "+both(ns)",
        "x both",
        "skipped",
        "parts"
    );
    for r in &rows {
        let both = r.cell(true, true);
        println!(
            "{:<15} {:>7} {:>11} {:>11} {:>11} {:>11} {:>7.2} {:>9} {:>6}/{}",
            r.name,
            r.rows,
            r.cell(false, false).ns,
            r.cell(true, false).ns,
            r.cell(false, true).ns,
            both.ns,
            r.speedup_full_vs_linear(),
            r.cell(true, false).elements_skipped,
            both.partitions_opened,
            both.partitions_total
        );
    }
    // machine-readable record (hand-rolled JSON — the workspace
    // deliberately carries no serializer dependency)
    let mut json = String::from("{\n  \"experiment\": \"skip_ablation\",\n");
    json.push_str(&format!(
        "  \"document\": \"xmark({scale}, 42)\",\n  \"reps\": {reps},\n  \
         \"block\": {},\n  \"workloads\": [\n",
        uload::DEFAULT_BLOCK
    ));
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"rows\": {}, \"cells\": [\n",
            r.name, r.rows
        ));
        for (j, c) in r.cells.iter().enumerate() {
            json.push_str(&format!(
                "      {{\"skip_index\": {}, \"summary_pruning\": {}, \"ns\": {}, \
                 \"elements_skipped\": {}, \"blocks_pruned\": {}, \
                 \"partitions_opened\": {}, \"partitions_total\": {}, \
                 \"stream_elements\": {}}}{}\n",
                c.skip_index,
                c.summary_pruning,
                c.ns,
                c.elements_skipped,
                c.blocks_pruned,
                c.partitions_opened,
                c.partitions_total,
                c.stream_elements,
                if j + 1 == r.cells.len() { "" } else { "," }
            ));
        }
        json.push_str(&format!(
            "    ], \"stacktree_ns\": {}, \"stacktree_indexed_ns\": {}, \
             \"speedup_full_vs_linear\": {:.3}}}{}\n",
            r.stacktree_ns,
            r.stacktree_indexed_ns,
            r.speedup_full_vs_linear(),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    match std::fs::write("BENCH_skip.json", &json) {
        Ok(()) => println!("(wrote BENCH_skip.json)"),
        Err(e) => eprintln!("(could not write BENCH_skip.json: {e})"),
    }
    println!(
        "(seeks engage where parent-open pruning discards whole runs; summary pruning \
         shrinks the streams before the merge starts — dense twigs are the honest near-tie)"
    );
}

fn vector(quick: bool) {
    header("E14 — columnar kernels: packed columns vs scalar paths");
    let (scale, reps) = if quick { (4, 3) } else { (15, 49) };
    let doc = uload::generate::xmark(scale, 42);
    let rows = experiments::vector_parity(&doc, reps);
    println!(
        "{:<15} {:>7} {:>6} {:>11} {:>11} {:>11} {:>8} {:>8} {:>9} {:>10}",
        "workload",
        "rows",
        "dense",
        "linear(ns)",
        "+skip(ns)",
        "column(ns)",
        "x linear",
        "x skip",
        "vbatches",
        "vcmp"
    );
    for r in &rows {
        println!(
            "{:<15} {:>7} {:>6} {:>11} {:>11} {:>11} {:>8.2} {:>8.2} {:>9} {:>10}",
            r.name,
            r.rows,
            r.dense,
            r.linear_ns,
            r.skip_ns,
            r.columnar_ns,
            r.speedup_vs_linear(),
            r.speedup_vs_skip(),
            r.batches_scanned,
            r.vector_compares
        );
    }
    let mut dense: Vec<f64> = rows
        .iter()
        .filter(|r| r.dense)
        .map(|r| r.speedup_vs_linear())
        .collect();
    dense.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let dense_median = dense[dense.len() / 2];
    println!("dense-grid median columnar speedup vs linear: {dense_median:.2}x");
    // machine-readable record (hand-rolled JSON — the workspace
    // deliberately carries no serializer dependency)
    let mut json = String::from("{\n  \"experiment\": \"vector_parity\",\n");
    json.push_str(&format!(
        "  \"document\": \"xmark({scale}, 42)\",\n  \"reps\": {reps},\n  \
         \"block\": {},\n  \"dense_median_speedup_vs_linear\": {dense_median:.3},\n  \
         \"workloads\": [\n",
        uload::DEFAULT_BLOCK
    ));
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"rows\": {}, \"dense\": {}, \
             \"stream_elements\": {}, \"linear_ns\": {}, \"skip_ns\": {}, \
             \"columnar_ns\": {}, \"speedup_vs_linear\": {:.3}, \
             \"speedup_vs_skip\": {:.3}, \"skip_vs_linear\": {:.3}, \
             \"batches_scanned\": {}, \"vector_compares\": {}, \
             \"elements_skipped\": {}}}{}\n",
            r.name,
            r.rows,
            r.dense,
            r.stream_elements,
            r.linear_ns,
            r.skip_ns,
            r.columnar_ns,
            r.speedup_vs_linear(),
            r.speedup_vs_skip(),
            r.skip_vs_linear(),
            r.batches_scanned,
            r.vector_compares,
            r.elements_skipped,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    match std::fs::write("BENCH_vector.json", &json) {
        Ok(()) => println!("(wrote BENCH_vector.json)"),
        Err(e) => eprintln!("(could not write BENCH_vector.json: {e})"),
    }
    println!(
        "(the packed pre/post/depth columns win the dense case by retiring compares \
         lane-at-a-time; on selective twigs the galloped seeks keep pace with the XB-tree)"
    );
}

fn pipeline(quick: bool) {
    header("E11 — pipelined batch executor vs materialized evaluation");
    // batch 256 balances throughput against resident state: every
    // operator holds at most one input batch's eval output, so the
    // executor's footprint scales with batch size, not with the
    // intermediate blow-up the cascade materializes
    let (scale, reps, batch, limit) = if quick {
        (4, 3, 256, 10)
    } else {
        (15, 7, 256, 10)
    };
    let doc = uload::generate::xmark(scale, 42);
    let rows = experiments::pipeline_ablation(&doc, reps, batch, limit);
    println!(
        "{:<15} {:>8} {:>10} {:>10} {:>9} {:>12} {:>12} {:>12} {:>8}",
        "workload",
        "rows",
        "mat peak",
        "strm peak",
        "x resid",
        "mat (ns)",
        "strm (ns)",
        "limit (ns)",
        "x limit"
    );
    for r in &rows {
        println!(
            "{:<15} {:>8} {:>10} {:>10} {:>9.2} {:>12} {:>12} {:>12} {:>8.2}",
            r.name,
            r.rows,
            r.mat_peak,
            r.stream_peak,
            r.residency_reduction(),
            r.mat_ns,
            r.stream_ns,
            r.limit_ns,
            r.limit_speedup()
        );
    }
    // machine-readable record (hand-rolled JSON — the workspace
    // deliberately carries no serializer dependency)
    let mut json = String::from("{\n  \"experiment\": \"pipeline_ablation\",\n");
    json.push_str(&format!(
        "  \"document\": \"xmark({scale}, 42)\",\n  \"reps\": {reps},\n  \
         \"batch_size\": {batch},\n  \"limit_rows\": {limit},\n  \"workloads\": [\n"
    ));
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"rows\": {}, \"mat_peak\": {}, \"stream_peak\": {}, \
             \"residency_reduction\": {:.3}, \"mat_ns\": {}, \"stream_ns\": {}, \
             \"limit_rows\": {}, \"limit_ns\": {}, \"limit_speedup\": {:.3}}}{}\n",
            r.name,
            r.rows,
            r.mat_peak,
            r.stream_peak,
            r.residency_reduction(),
            r.mat_ns,
            r.stream_ns,
            r.limit_rows,
            r.limit_ns,
            r.limit_speedup(),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    match std::fs::write("BENCH_pipeline.json", &json) {
        Ok(()) => println!("(wrote BENCH_pipeline.json)"),
        Err(e) => eprintln!("(could not write BENCH_pipeline.json: {e})"),
    }
    println!(
        "(the cursor tree keeps build sides plus one bounded batch per operator resident; \
         multiplying twigs see the largest peak-memory reduction, and LIMIT-style consumers \
         stop paying for rows they never pull)"
    );
}

fn server(quick: bool) {
    use std::time::Instant;
    use uload::server::{Client, Server, ServerConfig};

    header("E13 — multi-client query server: result cache and concurrency sweep");
    let (scale, reps, per_client) = if quick { (2, 8, 12) } else { (8, 25, 40) };
    let client_counts = [1usize, 2, 4, 8];
    let query = r#"for $x in doc("X")//item return <res>{$x/name/text()}</res>"#;

    let doc = uload::generate::xmark(scale, 42);
    let mut engine = uload::Uload::builder()
        .document(&doc)
        .batch_size(256)
        .cache_capacity(1024)
        .build()
        .expect("engine over xmark");
    engine
        .add_view_text("V", "//item[id:s]{ /n? name1:name[val] }", &doc)
        .expect("view definition");
    let handle = uload::DocumentHandle::new(doc.clone());
    let server = Server::start(ServerConfig::default(), engine, handle).expect("server start");

    let mut warm = Client::connect(server.addr()).expect("connect");
    let fp = warm.prepare(query).expect("prepare");

    // cold path: each repetition swaps the document first, minting a new
    // version so the (fingerprint, version) cache key can never match —
    // the server plans nothing (the query is prepared) but executes fully
    for _ in 0..reps {
        server.state().swap_document(doc.clone());
        let reply = warm.exec(fp).expect("uncached exec");
        assert!(!reply.cached, "document swap failed to invalidate");
    }
    // warm path: the last miss memoized the current version's rows
    for _ in 0..reps {
        let reply = warm.exec(fp).expect("cached exec");
        assert!(reply.cached, "warm exec missed the result cache");
    }
    // server-side latencies come from the telemetry histograms the
    // request path records into (request receipt → DONE), so the
    // comparison excludes the wire and measures execute-vs-memoize
    // honestly — and exercises the same snapshots METRICS serves
    let uncached_hist = server.state().metrics().exec_uncached_ns.snapshot();
    let cached_hist = server.state().metrics().exec_cached_ns.snapshot();
    assert_eq!(
        uncached_hist.count(),
        reps as u64,
        "uncached histogram missed executions"
    );
    assert_eq!(
        cached_hist.count(),
        reps as u64,
        "cached histogram missed cache hits"
    );
    let uncached_p50 = uncached_hist.p50();
    let cached_p50 = cached_hist.p50();
    let warm_speedup = uncached_p50 as f64 / cached_p50.max(1) as f64;
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>5}",
        "phase", "p50 (ns)", "p99 (ns)", "p999 (ns)", "n"
    );
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>5}",
        "uncached",
        uncached_p50,
        uncached_hist.p99(),
        uncached_hist.p999(),
        reps
    );
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>5}",
        "cached",
        cached_p50,
        cached_hist.p99(),
        cached_hist.p999(),
        reps
    );
    println!("warm result-cache speedup: {warm_speedup:.2}x");

    // concurrency sweep: N clients hammer the warm entry; each thread
    // records client-side wall latencies into its own lock-free
    // histogram and the per-round stats come from the merged snapshots
    // (the same mergeability METRICS relies on)
    let addr = server.addr().clone();
    let mut sweep = Vec::new();
    println!(
        "\n{:>7} {:>9} {:>10} {:>12} {:>12} {:>12}",
        "clients", "requests", "qps", "p50 (ns)", "p90 (ns)", "p99 (ns)"
    );
    for &n in &client_counts {
        // connect + prepare happen before the barrier: the timed window
        // holds requests only (accepting a connection costs an idle poll)
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(n + 1));
        let threads: Vec<_> = (0..n)
            .map(|_| {
                let addr = addr.clone();
                let barrier = barrier.clone();
                std::thread::spawn(move || {
                    let mut c = Client::connect(&addr).expect("sweep connect");
                    let fp = c.prepare(query).expect("sweep prepare");
                    barrier.wait();
                    let lat = uload::Histogram::new();
                    for _ in 0..per_client {
                        let start = Instant::now();
                        let reply = c.exec(fp).expect("sweep exec");
                        lat.record_duration(start.elapsed());
                        assert!(!reply.rows.is_empty(), "sweep exec lost its rows");
                    }
                    let _ = c.quit();
                    lat.snapshot()
                })
            })
            .collect();
        barrier.wait();
        let round = Instant::now();
        let mut lat = uload::HistogramSnapshot::empty();
        for t in threads {
            lat.merge(&t.join().expect("sweep thread"));
        }
        let wall = round.elapsed();
        let requests = n * per_client;
        let qps = requests as f64 / wall.as_secs_f64();
        println!(
            "{n:>7} {requests:>9} {qps:>10.0} {:>12} {:>12} {:>12}",
            lat.p50(),
            lat.p90(),
            lat.p99()
        );
        sweep.push((n, requests, qps, lat));
    }

    let rc = server.state().result_cache().counters();
    let canonical = server.state().engine().cache_stats();
    println!(
        "result cache: {} hits / {} misses ({:.1}% hit rate), {} entries",
        rc.hits,
        rc.misses,
        rc.hit_rate() * 100.0,
        rc.entries
    );
    if let Some(cs) = &canonical {
        let total = cs.hits + cs.misses;
        println!(
            "canonical cache: {} hits / {} misses ({:.1}% hit rate)",
            cs.hits,
            cs.misses,
            if total == 0 {
                0.0
            } else {
                cs.hits as f64 / total as f64 * 100.0
            }
        );
    }

    // machine-readable record (hand-rolled JSON — the workspace
    // deliberately carries no serializer dependency)
    let mut json = String::from("{\n  \"experiment\": \"server\",\n");
    json.push_str(&format!(
        "  \"document\": \"xmark({scale}, 42)\",\n  \"query\": \"{}\",\n  \
         \"reps\": {reps},\n  \"per_client_requests\": {per_client},\n",
        query.replace('\\', "\\\\").replace('"', "\\\"")
    ));
    json.push_str(&format!(
        "  \"uncached_ns_p50\": {uncached_p50},\n  \"cached_ns_p50\": {cached_p50},\n  \
         \"warm_speedup\": {warm_speedup:.3},\n"
    ));
    // full server-side snapshots (summary stats + non-empty buckets),
    // spliced in compact form from the telemetry layer's own serializer
    json.push_str(&format!(
        "  \"server_histograms\": {{\"uncached\": {}, \"cached\": {}}},\n  \"sweep\": [\n",
        uncached_hist.to_json().to_string_compact(),
        cached_hist.to_json().to_string_compact()
    ));
    for (i, (n, requests, qps, lat)) in sweep.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"clients\": {n}, \"requests\": {requests}, \"qps\": {qps:.1}, \
             \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}}}{}\n",
            lat.p50(),
            lat.p90(),
            lat.p99(),
            lat.p999(),
            if i + 1 == sweep.len() { "" } else { "," }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"result_cache\": {{\"hits\": {}, \"misses\": {}, \"insertions\": {}, \
         \"evictions\": {}, \"entries\": {}, \"hit_rate\": {:.4}}},\n",
        rc.hits,
        rc.misses,
        rc.insertions,
        rc.evictions,
        rc.entries,
        rc.hit_rate()
    ));
    match &canonical {
        Some(cs) => {
            let total = cs.hits + cs.misses;
            json.push_str(&format!(
                "  \"canonical_cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \
                 \"entries\": {}, \"hit_rate\": {:.4}}}\n",
                cs.hits,
                cs.misses,
                cs.evictions,
                cs.entries,
                if total == 0 {
                    0.0
                } else {
                    cs.hits as f64 / total as f64
                }
            ));
        }
        None => json.push_str("  \"canonical_cache\": null\n"),
    }
    json.push_str("}\n");
    match std::fs::write("BENCH_server.json", &json) {
        Ok(()) => println!("(wrote BENCH_server.json)"),
        Err(e) => eprintln!("(could not write BENCH_server.json: {e})"),
    }

    let _ = warm.quit();
    server.shutdown();
    server.wait();
    println!(
        "(cache hits bypass admission and the executor entirely — the warm path serves \
         memoized rows; the sweep shows the shared entry scaling across sessions)"
    );
}
