//! # uload — physical data independence for XML via XML Access Modules
//!
//! The façade of the workspace: one import surface over the layered
//! crates (`xmltree` → `summary` → `xam-core` → `containment` →
//! `rewriting` → `storage`). Typical use goes through [`prelude`]:
//!
//! ```
//! use uload::prelude::*;
//!
//! let doc = parse_document("<bib><book><title>t</title></book></bib>")?;
//! let mut engine = Uload::builder()
//!     .document(&doc)
//!     .config(EngineConfig::default())
//!     .build()?;
//! engine.add_view_text("v", "//book[id:s]{ /n? t:title[cont] }", &doc)?;
//! let (results, rewritings) = engine.answer(
//!     r#"for $b in doc("d")//book return <r>{$b/title}</r>"#,
//!     &doc,
//! )?;
//! assert_eq!(results.len(), 1);
//! assert_eq!(rewritings[0].views_used, vec!["v"]);
//! # uload::Result::Ok(())
//! ```
//!
//! Every fallible function of this façade returns [`Result`] with the
//! unified [`Error`] — the per-crate error types never surface here.

pub use uload_error::{Error, Result};

pub use algebra::{
    fuse_struct_joins, Evaluator, Relation, Seek, SkipIndex, StreamExec, TupleBatch, TwigPattern,
    DEFAULT_BLOCK,
};
pub use containment::{
    canonical_model, contain, contained_in_union, equivalent, equivalent_with,
    minimize_by_contraction, minimize_by_contraction_with, minimize_global, minimize_global_with,
    satisfiable, CacheStats, CanonicalCache, ContainOptions, ContainmentOutcome,
};
pub use obs::json;
pub use obs::{
    init_from_env, ArmTelemetry, CacheCounters, EnvFilter, ExecMetrics, FmtSubscriber, Json,
    OpProfile, OpStreamProfile, PlanNodeProfile, QueryProfile, StreamProfile,
};
pub use rewriting::{
    rewrite_with_engine, EngineConfig, EngineOptions, QueryResults, RewriteConfig, RewriteStats,
    Rewriting, Uload, UloadBuilder,
};
pub use storage::{catalog, qep, IdStreamIndex};
pub use summary::Summary;
pub use xam_core::{Xam, XamNodeId};
pub use xmltree::{generate, Document};
pub use xquery::{ExtractedQuery, Query};

/// Parse an XML document (façade wrapper returning the unified error).
pub fn parse_document(text: &str) -> Result<Document> {
    xmltree::parse_document(text).map_err(|e| Error::Parse(e.to_string()))
}

/// Parse a textual XAM pattern.
pub fn parse_xam(text: &str) -> Result<Xam> {
    xam_core::parse_xam(text).map_err(|e| Error::Parse(e.to_string()))
}

/// Evaluate a XAM directly over a document (no views involved).
pub fn evaluate_xam(xam: &Xam, doc: &Document) -> Result<Relation> {
    xam_core::evaluate(xam, doc).map_err(|e| Error::Eval(e.to_string()))
}

/// Typed output of [`execute_query`]: one serialized item per result
/// row, plus a fingerprint of the logical plan that produced them
/// (stable across runs of the same engine version, so regressions in
/// planning show up as a fingerprint change even when the rows agree).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryOutput {
    /// The query's result items, in result order.
    pub items: Vec<QueryItem>,
    /// Hash of the executed logical plan's canonical textual form.
    pub plan_fingerprint: u64,
}

/// One serialized result item of a [`QueryOutput`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryItem {
    /// The item serialized as XML.
    pub xml: String,
}

impl QueryOutput {
    /// The serialized items as plain strings (the pre-0.4 shape).
    pub fn into_strings(self) -> Vec<String> {
        self.items.into_iter().map(|i| i.xml).collect()
    }
}

/// Execute an XQuery directly over a document (no views involved),
/// returning the typed [`QueryOutput`].
pub fn execute_query(text: &str, doc: &Document) -> Result<QueryOutput> {
    use std::hash::{Hash, Hasher};
    let (items, plan) =
        xquery::execute_query_with_plan(text, doc).map_err(|e| Error::Translate(e.to_string()))?;
    let mut h = std::collections::hash_map::DefaultHasher::new();
    plan.to_string().hash(&mut h);
    Ok(QueryOutput {
        items: items.into_iter().map(|xml| QueryItem { xml }).collect(),
        plan_fingerprint: h.finish(),
    })
}

/// Parse an XQuery into its AST (for pattern extraction).
pub fn parse_query(text: &str) -> Result<Query> {
    xquery::parse_query(text).map_err(|e| Error::Parse(e.to_string()))
}

/// Extract the maximal XAM patterns of a parsed XQuery (Chapter 3).
pub fn extract_patterns(q: &Query) -> Result<ExtractedQuery> {
    xquery::extract_patterns(q).map_err(|e| Error::Translate(e.to_string()))
}

/// The one-stop import: `use uload::prelude::*;`.
pub mod prelude {
    pub use crate::{
        canonical_model, catalog, contain, contained_in_union, equivalent, evaluate_xam,
        execute_query, extract_patterns, fuse_struct_joins, generate, init_from_env,
        minimize_by_contraction, minimize_global, parse_document, parse_query, parse_xam, qep,
        rewrite_with_engine, CacheStats, CanonicalCache, ContainOptions, ContainmentOutcome,
        Document, EngineConfig, EngineOptions, Error, Evaluator, IdStreamIndex, PlanNodeProfile,
        QueryItem, QueryOutput, QueryProfile, QueryResults, Relation, Result, RewriteConfig,
        Rewriting, StreamProfile, Summary, TupleBatch, TwigPattern, Uload, Xam,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_roundtrip() {
        let doc = parse_document("<a><b>1</b><b>2</b></a>").unwrap();
        let s = Summary::of_document(&doc);
        let p = parse_xam("//b[id:s]").unwrap();
        let out = contain(&p, &p, &s, &ContainOptions::default());
        assert!(out.contained);
        assert!(matches!(parse_document("<unclosed>"), Err(Error::Parse(_))));
        assert!(matches!(parse_xam("//["), Err(Error::Parse(_))));
    }

    #[test]
    fn builder_through_prelude() {
        let doc = parse_document("<a><b/></a>").unwrap();
        let engine = Uload::builder()
            .document(&doc)
            .config(EngineConfig::default())
            .build()
            .unwrap();
        assert_eq!(engine.summary().len(), 2);
    }
}
