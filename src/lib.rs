//! # uload — physical data independence for XML via XML Access Modules
//!
//! The façade of the workspace: one import surface over the layered
//! crates (`xmltree` → `summary` → `xam-core` → `containment` →
//! `rewriting` → `storage` → `uload-server`). Typical use goes through
//! [`prelude`]:
//!
//! ```
//! use uload::prelude::*;
//!
//! let doc = parse_document("<bib><book><title>t</title></book></bib>")?;
//! let mut engine = Uload::builder()
//!     .document(&doc)
//!     .config(EngineConfig::default())
//!     .build()?;
//! engine.add_view_text("v", "//book[id:s]{ /n? t:title[cont] }", &doc)?;
//! let (results, rewritings) = engine.answer(
//!     r#"for $b in doc("d")//book return <r>{$b/title}</r>"#,
//!     &doc,
//! )?;
//! assert_eq!(results.len(), 1);
//! assert_eq!(rewritings[0].views_used, vec!["v"]);
//! # uload::Result::Ok(())
//! ```
//!
//! For the serving path, the same query goes through a versioned
//! [`DocumentHandle`] and a reusable [`PreparedQuery`]:
//!
//! ```
//! use uload::prelude::*;
//!
//! let doc = parse_document("<bib><book><title>t</title></book></bib>")?;
//! let mut engine = Uload::builder().document(&doc).build()?;
//! engine.add_view_text("v", "//book[id:s]{ /n? t:title[cont] }", &doc)?;
//! let handle = DocumentHandle::new(doc);
//! let prep = engine.prepare_query(
//!     r#"for $b in doc("d")//book return <r>{$b/title}</r>"#,
//! )?;
//! let out = engine.execute_prepared(&prep, &handle)?;
//! assert_eq!(out.items.len(), 1);
//! assert_eq!(out.plan_fingerprint, prep.fingerprint());
//! # uload::Result::Ok(())
//! ```
//!
//! One-off helpers that need no engine instance (XAM evaluation, direct
//! XQuery execution, pattern extraction) are associated functions on
//! [`Uload`] — [`Uload::evaluate_xam`], [`Uload::execute_direct`],
//! [`Uload::parse_query`], [`Uload::extract_patterns`]. Only
//! [`parse_document`] and [`parse_xam`] remain first-class crate-root
//! functions (they are the two entry points everything else starts
//! from); the old deprecated free-function wrappers are gone.
//!
//! Every fallible function of this façade returns [`Result`] with the
//! unified [`Error`] — the per-crate error types never surface here.

pub use uload_error::{Error, Result};

pub use algebra::{
    fuse_struct_joins, ArmSwitchHint, Evaluator, Relation, Seek, SkipIndex, StreamExec, TupleBatch,
    TwigPattern, DEFAULT_BLOCK,
};
pub use containment::{
    canonical_model, contain, contained_in_union, equivalent, equivalent_with,
    minimize_by_contraction, minimize_by_contraction_with, minimize_global, minimize_global_with,
    satisfiable, CacheStats, CanonicalCache, ContainOptions, ContainmentOutcome,
};
pub use obs::json;
pub use obs::{
    init_from_env, ArmStats, ArmTelemetry, CacheCounters, Counter, EnvFilter, ExecMetrics,
    FmtSubscriber, Gauge, Histogram, HistogramSnapshot, Json, MetricsRegistry, NodeStats,
    OpProfile, OpStreamProfile, PlanNodeProfile, QueryProfile, RegistrySnapshot,
    ResultCacheCounters, SessionProfile, StatsKey, StatsStore, StreamProfile,
};
pub use rewriting::{
    plan_fingerprint, rewrite_with_engine, CostModel, EngineConfig, EngineOptions, Estimate,
    EstimateNode, EstimateSource, Explain, PreparedQuery, QueryItem, QueryOutput, QueryResults,
    RewriteConfig, RewriteStats, Rewriting, Uload, UloadBuilder,
};
pub use storage::{catalog, qep, DocumentHandle, DocumentVersion, IdStreamIndex};
pub use summary::Summary;
pub use xam_core::{Xam, XamNodeId};
pub use xmltree::{generate, Document};
pub use xquery::{ExtractedQuery, Query};

/// The multi-client serving layer (re-export of the `uload-server`
/// crate): [`server::Server`], [`server::ServerConfig`],
/// [`server::Client`] and the line protocol.
pub use uload_server as server;

pub use uload_server::{
    BindAddr, Client, ExecReply, Server, ServerConfig, ServerHandle, ServerMetrics, SlowLog,
    SlowQueryEntry,
};

/// Parse an XML document (façade wrapper returning the unified error).
pub fn parse_document(text: &str) -> Result<Document> {
    Uload::parse_document(text)
}

/// Parse a textual XAM pattern.
pub fn parse_xam(text: &str) -> Result<Xam> {
    Uload::parse_xam(text)
}

/// The one-stop import: `use uload::prelude::*;`.
///
/// The one-off helpers live as associated functions on [`Uload`], which
/// the prelude already brings in.
pub mod prelude {
    pub use crate::{
        canonical_model, catalog, contain, contained_in_union, equivalent, fuse_struct_joins,
        generate, init_from_env, minimize_by_contraction, minimize_global, parse_document,
        parse_xam, plan_fingerprint, qep, rewrite_with_engine, BindAddr, CacheStats,
        CanonicalCache, Client, ContainOptions, ContainmentOutcome, CostModel, Document,
        DocumentHandle, DocumentVersion, EngineConfig, EngineOptions, Error, Estimate,
        EstimateNode, EstimateSource, Evaluator, ExecReply, Explain, Histogram, HistogramSnapshot,
        IdStreamIndex, MetricsRegistry, PlanNodeProfile, PreparedQuery, QueryItem, QueryOutput,
        QueryProfile, QueryResults, Relation, Result, ResultCacheCounters, RewriteConfig,
        Rewriting, Server, ServerConfig, ServerHandle, SessionProfile, StatsStore, StreamProfile,
        Summary, TupleBatch, TwigPattern, Uload, Xam,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_roundtrip() {
        let doc = parse_document("<a><b>1</b><b>2</b></a>").unwrap();
        let s = Summary::of_document(&doc);
        let p = parse_xam("//b[id:s]").unwrap();
        let out = contain(&p, &p, &s, &ContainOptions::default());
        assert!(out.contained);
        assert!(matches!(parse_document("<unclosed>"), Err(Error::Parse(_))));
        assert!(matches!(parse_xam("//["), Err(Error::Parse(_))));
    }

    #[test]
    fn builder_through_prelude() {
        let doc = parse_document("<a><b/></a>").unwrap();
        let engine = Uload::builder()
            .document(&doc)
            .config(EngineConfig::default())
            .build()
            .unwrap();
        assert_eq!(engine.summary().len(), 2);
    }

    #[test]
    fn associated_facade_helpers_work() {
        let doc = parse_document("<a><b>1</b></a>").unwrap();
        let xam = parse_xam("//b[id:s]").unwrap();
        let rel = Uload::evaluate_xam(&xam, &doc).unwrap();
        assert_eq!(rel.len(), 1);
        let out = Uload::execute_direct(r#"doc("d")//b"#, &doc).unwrap();
        assert_eq!(out.items.len(), 1);
        let q = Uload::parse_query(r#"doc("d")//b"#).unwrap();
        assert!(!Uload::extract_patterns(&q).unwrap().patterns.is_empty());
    }
}
