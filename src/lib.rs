//! # uload — physical data independence for XML via XML Access Modules
//!
//! The façade of the workspace: one import surface over the layered
//! crates (`xmltree` → `summary` → `xam-core` → `containment` →
//! `rewriting` → `storage`). Typical use goes through [`prelude`]:
//!
//! ```
//! use uload::prelude::*;
//!
//! let doc = parse_document("<bib><book><title>t</title></book></bib>")?;
//! let mut engine = Uload::builder()
//!     .document(&doc)
//!     .config(EngineConfig::default())
//!     .build()?;
//! engine.add_view_text("v", "//book[id:s]{ /n? t:title[cont] }", &doc)?;
//! let (results, rewritings) = engine.answer(
//!     r#"for $b in doc("d")//book return <r>{$b/title}</r>"#,
//!     &doc,
//! )?;
//! assert_eq!(results.len(), 1);
//! assert_eq!(rewritings[0].views_used, vec!["v"]);
//! # uload::Result::Ok(())
//! ```
//!
//! Every fallible function of this façade returns [`Result`] with the
//! unified [`Error`] — the per-crate error types never surface here.

pub use uload_error::{Error, Result};

pub use algebra::{fuse_struct_joins, Evaluator, Relation, TwigPattern};
pub use containment::{
    canonical_model, contain, contained_in_union, equivalent, equivalent_with,
    minimize_by_contraction, minimize_by_contraction_with, minimize_global, minimize_global_with,
    satisfiable, CacheStats, CanonicalCache, ContainOptions, ContainmentOutcome,
};
pub use obs::json;
pub use obs::{
    init_from_env, ArmTelemetry, CacheCounters, EnvFilter, ExecMetrics, FmtSubscriber, Json,
    OpProfile, PlanNodeProfile, QueryProfile,
};
pub use rewriting::{
    rewrite_with_engine, EngineConfig, EngineOptions, RewriteConfig, RewriteStats, Rewriting,
    Uload, UloadBuilder,
};
pub use storage::{catalog, qep, IdStreamIndex};
pub use summary::Summary;
pub use xam_core::{Xam, XamNodeId};
pub use xmltree::{generate, Document};
pub use xquery::{ExtractedQuery, Query};

/// Parse an XML document (façade wrapper returning the unified error).
pub fn parse_document(text: &str) -> Result<Document> {
    xmltree::parse_document(text).map_err(|e| Error::Parse(e.to_string()))
}

/// Parse a textual XAM pattern.
pub fn parse_xam(text: &str) -> Result<Xam> {
    xam_core::parse_xam(text).map_err(|e| Error::Parse(e.to_string()))
}

/// Evaluate a XAM directly over a document (no views involved).
pub fn evaluate_xam(xam: &Xam, doc: &Document) -> Result<Relation> {
    xam_core::evaluate(xam, doc).map_err(|e| Error::Eval(e.to_string()))
}

/// Execute an XQuery directly over a document (no views involved).
pub fn execute_query(text: &str, doc: &Document) -> Result<Vec<String>> {
    xquery::execute_query(text, doc).map_err(|e| Error::Translate(e.to_string()))
}

/// Parse an XQuery into its AST (for pattern extraction).
pub fn parse_query(text: &str) -> Result<Query> {
    xquery::parse_query(text).map_err(|e| Error::Parse(e.to_string()))
}

/// Extract the maximal XAM patterns of a parsed XQuery (Chapter 3).
pub fn extract_patterns(q: &Query) -> Result<ExtractedQuery> {
    xquery::extract_patterns(q).map_err(|e| Error::Translate(e.to_string()))
}

/// The one-stop import: `use uload::prelude::*;`.
pub mod prelude {
    pub use crate::{
        canonical_model, catalog, contain, contained_in_union, equivalent, evaluate_xam,
        execute_query, extract_patterns, fuse_struct_joins, generate, init_from_env,
        minimize_by_contraction, minimize_global, parse_document, parse_query, parse_xam, qep,
        rewrite_with_engine, CacheStats, CanonicalCache, ContainOptions, ContainmentOutcome,
        Document, EngineConfig, EngineOptions, Error, Evaluator, IdStreamIndex, PlanNodeProfile,
        QueryProfile, Relation, Result, RewriteConfig, Rewriting, Summary, TwigPattern, Uload, Xam,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_roundtrip() {
        let doc = parse_document("<a><b>1</b><b>2</b></a>").unwrap();
        let s = Summary::of_document(&doc);
        let p = parse_xam("//b[id:s]").unwrap();
        let out = contain(&p, &p, &s, &ContainOptions::default());
        assert!(out.contained);
        assert!(matches!(parse_document("<unclosed>"), Err(Error::Parse(_))));
        assert!(matches!(parse_xam("//["), Err(Error::Parse(_))));
    }

    #[test]
    fn builder_through_prelude() {
        let doc = parse_document("<a><b/></a>").unwrap();
        let engine = Uload::builder()
            .document(&doc)
            .config(EngineConfig::default())
            .build()
            .unwrap();
        assert_eq!(engine.summary().len(), 2);
    }
}
